package openmp

import (
	"math"
	"testing"
	"testing/quick"
)

func reduceOpts(n int, method ReductionMethod) Options {
	o := DefaultOptions()
	o.NumThreads = n
	o.BlocktimeMS = 0
	o.Reduction = method
	return o
}

func TestReduceSumAllMethods(t *testing.T) {
	methods := []ReductionMethod{ReductionDefault, ReductionTree, ReductionCritical, ReductionAtomic}
	for _, m := range methods {
		for _, n := range []int{1, 2, 3, 4, 5, 8} {
			rt := testRuntime(t, reduceOpts(n, m))
			var results []float64
			mu := make(chan struct{}, 1)
			mu <- struct{}{}
			rt.Parallel(func(th *Thread) {
				v := th.ReduceSum(float64(th.ID() + 1))
				<-mu
				results = append(results, v)
				mu <- struct{}{}
			})
			want := float64(n*(n+1)) / 2
			if len(results) != n {
				t.Fatalf("%s n=%d: %d results, want %d", m, n, len(results), n)
			}
			for _, r := range results {
				if r != want {
					t.Errorf("%s n=%d: ReduceSum = %v on some thread, want %v", m, n, r, want)
				}
			}
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	for _, m := range []ReductionMethod{ReductionTree, ReductionCritical, ReductionAtomic} {
		rt := testRuntime(t, reduceOpts(4, m))
		var gotMax, gotMin float64
		rt.Parallel(func(th *Thread) {
			mx := th.ReduceMax(float64(th.ID()*10 - 15)) // -15, -5, 5, 15
			mn := th.ReduceMin(float64(th.ID()*10 - 15))
			th.Master(func() { gotMax, gotMin = mx, mn })
		})
		if gotMax != 15 {
			t.Errorf("%s: max = %v, want 15", m, gotMax)
		}
		if gotMin != -15 {
			t.Errorf("%s: min = %v, want -15", m, gotMin)
		}
	}
}

func TestReduceRepeatedConstructs(t *testing.T) {
	rt := testRuntime(t, reduceOpts(4, ReductionTree))
	rt.Parallel(func(th *Thread) {
		for round := 1; round <= 20; round++ {
			got := th.ReduceSum(float64(round))
			if want := float64(4 * round); got != want {
				t.Errorf("round %d: sum = %v, want %v", round, got, want)
			}
		}
	})
}

func TestReduceSingleThreadShortCircuits(t *testing.T) {
	rt := testRuntime(t, reduceOpts(1, ReductionAtomic))
	rt.Parallel(func(th *Thread) {
		if got := th.ReduceSum(42); got != 42 {
			t.Errorf("1-thread ReduceSum = %v, want 42", got)
		}
	})
}

func TestReduceHeuristicMatchesForcedResults(t *testing.T) {
	// The heuristic (critical for 2-4 threads, tree beyond) must agree
	// numerically with every forced method for integer-valued inputs.
	for _, n := range []int{2, 4, 6} {
		want := float64(n * (n - 1) / 2)
		for _, m := range []ReductionMethod{ReductionDefault, ReductionTree, ReductionCritical, ReductionAtomic} {
			rt := testRuntime(t, reduceOpts(n, m))
			var got float64
			rt.Parallel(func(th *Thread) {
				v := th.ReduceSum(float64(th.ID()))
				th.Master(func() { got = v })
			})
			if got != want {
				t.Errorf("n=%d method=%s: %v, want %v", n, m, got, want)
			}
		}
	}
}

func TestReducePropertySumsMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	rt := testRuntime(t, reduceOpts(4, ReductionTree))
	f := func(vals [4]int16) bool {
		var got float64
		rt.Parallel(func(th *Thread) {
			v := th.ReduceSum(float64(vals[th.ID()]))
			th.Master(func() { got = v })
		})
		want := 0.0
		for _, v := range vals {
			want += float64(v)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReduceMixedWithLoops(t *testing.T) {
	// A realistic CG-style pattern: worksharing loop accumulating a local
	// partial, then a team reduction.
	rt := testRuntime(t, reduceOpts(4, ReductionTree))
	const n = 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	var dot float64
	rt.Parallel(func(th *Thread) {
		local := 0.0
		th.ForNowait(n, func(i int) { local += x[i] * x[i] })
		v := th.ReduceSum(local)
		th.Master(func() { dot = v })
	})
	want := 0.0
	for _, v := range x {
		want += v * v
	}
	if math.Abs(dot-want) > 1e-9 {
		t.Errorf("dot = %v, want %v", dot, want)
	}
}

func TestTreeReductionSlotsAreAligned(t *testing.T) {
	for _, align := range []int{64, 128, 256, 512} {
		o := reduceOpts(4, ReductionTree)
		o.AlignAlloc = align
		rt := testRuntime(t, o)
		var got float64
		rt.Parallel(func(th *Thread) {
			v := th.ReduceSum(1)
			th.Master(func() { got = v })
		})
		if got != 4 {
			t.Errorf("align=%d: sum = %v, want 4", align, got)
		}
	}
}
