package openmp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime owns a pool of worker goroutines and executes fork–join parallel
// regions over them. Create one with New, use it from a single orchestrating
// goroutine, and release the workers with Close. Parallel regions may not be
// nested: calling Parallel from inside a region is a programming error (the
// inner call would deadlock on the region lock, as OpenMP nested parallelism
// is disabled in this runtime).
type Runtime struct {
	opts      Options
	bind      BindPolicy
	placement []int // thread -> place index; nil when unbound

	regionMu sync.Mutex
	workers  []*worker
	wg       sync.WaitGroup
	closed   bool

	critMu    sync.Mutex
	criticals map[string]*sync.Mutex

	stats rtStats
}

// Stats is a snapshot of runtime activity counters, useful for verifying
// that a configuration exercised the intended code paths (e.g. turnaround
// mode never sleeps) and for calibrating the performance model.
type Stats struct {
	Regions     uint64 // parallel regions executed
	Sleeps      uint64 // times an idle worker exhausted its blocktime and slept
	Wakeups     uint64 // times a slept worker was woken for new work
	TasksRun    uint64 // explicit tasks executed
	TasksStolen uint64 // tasks taken from another thread's deque
	Chunks      uint64 // worksharing chunks dispatched
}

type rtStats struct {
	regions, sleeps, wakeups, tasksRun, tasksStolen, chunks atomic.Uint64
}

// New validates opts and starts NumThreads-1 worker goroutines (the caller
// of Parallel acts as thread 0). Serial mode starts no workers.
func New(opts Options) (*Runtime, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts:      opts,
		bind:      opts.effectiveBind(),
		criticals: make(map[string]*sync.Mutex),
	}
	rt.placement = AssignPlaces(len(opts.Places), rt.bind, opts.NumThreads, 0)
	nworkers := opts.NumThreads - 1
	if opts.Library == LibSerial {
		nworkers = 0
	}
	rt.workers = make([]*worker, nworkers)
	for i := range rt.workers {
		w := &worker{rt: rt, id: i, work: make(chan *Team, 1)}
		rt.workers[i] = w
		rt.wg.Add(1)
		go w.loop()
	}
	return rt, nil
}

// MustNew is New but panics on error; convenient for examples and tests.
func MustNew(opts Options) *Runtime {
	rt, err := New(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// Options returns the configuration the runtime was built with.
func (rt *Runtime) Options() Options { return rt.opts }

// NumThreads returns the team size of parallel regions (1 in serial mode).
func (rt *Runtime) NumThreads() int {
	if rt.opts.Library == LibSerial {
		return 1
	}
	return rt.opts.NumThreads
}

// Placement returns a copy of the thread→place assignment, or nil when
// threads are unbound (OMP_PROC_BIND=false).
func (rt *Runtime) Placement() []int {
	if rt.placement == nil {
		return nil
	}
	out := make([]int, len(rt.placement))
	copy(out, rt.placement)
	return out
}

// Stats returns a snapshot of the activity counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Regions:     rt.stats.regions.Load(),
		Sleeps:      rt.stats.sleeps.Load(),
		Wakeups:     rt.stats.wakeups.Load(),
		TasksRun:    rt.stats.tasksRun.Load(),
		TasksStolen: rt.stats.tasksStolen.Load(),
		Chunks:      rt.stats.chunks.Load(),
	}
}

// Close shuts the worker pool down and waits for the goroutines to exit.
// The runtime must not be used afterwards. Close is idempotent.
func (rt *Runtime) Close() {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for _, w := range rt.workers {
		close(w.work)
	}
	rt.wg.Wait()
}

// Parallel executes body once per team thread, concurrently, and returns
// after the implicit end-of-region barrier (which first drains any
// outstanding explicit tasks). The calling goroutine participates as thread
// 0, exactly like the primary thread of an OpenMP team.
func (rt *Runtime) Parallel(body func(th *Thread)) {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		panic("openmp: Parallel called on closed Runtime")
	}
	rt.stats.regions.Add(1)
	n := rt.NumThreads()
	tm := newTeam(rt, n, body)
	for i := 0; i < n-1; i++ {
		rt.workers[i].work <- tm
	}
	tm.run(0)
	tm.join.Wait()
}

// ParallelFor is shorthand for a region containing a single worksharing
// loop over [0, n).
func (rt *Runtime) ParallelFor(n int, body func(i int)) {
	rt.Parallel(func(th *Thread) { th.For(n, body) })
}

// ParallelReduceSum runs body over [0, n) and returns the sum of its return
// values, combined with the configured reduction method.
func (rt *Runtime) ParallelReduceSum(n int, body func(i int) float64) float64 {
	var out float64
	rt.Parallel(func(th *Thread) {
		local := 0.0
		th.ForNowait(n, func(i int) { local += body(i) })
		v := th.ReduceSum(local)
		if th.ID() == 0 {
			out = v
		}
	})
	return out
}

// criticalFor returns the process-wide lock for the named critical section.
func (rt *Runtime) criticalFor(name string) *sync.Mutex {
	rt.critMu.Lock()
	defer rt.critMu.Unlock()
	mu, ok := rt.criticals[name]
	if !ok {
		mu = new(sync.Mutex)
		rt.criticals[name] = mu
	}
	return mu
}

// worker is one pooled thread. Between regions it waits for work according
// to the wait policy: spin while the blocktime budget lasts, then sleep on
// the channel until woken.
type worker struct {
	rt   *Runtime
	id   int // team thread id is id+1
	work chan *Team
}

func (w *worker) loop() {
	defer w.rt.wg.Done()
	for {
		tm, ok := w.next()
		if !ok {
			return
		}
		tm.run(w.id + 1)
	}
}

// next implements the KMP_BLOCKTIME / KMP_LIBRARY wait policy. With an
// infinite budget (turnaround mode or KMP_BLOCKTIME=infinite) the worker
// spins — yielding the processor but never blocking. With a zero budget it
// sleeps immediately. Otherwise it spins until the budget expires and then
// sleeps; being woken from sleep is the expensive path the paper's
// turnaround-mode findings hinge on.
func (w *worker) next() (*Team, bool) {
	bt := w.rt.opts.effectiveBlocktimeMS()
	if bt != 0 {
		var deadline time.Time
		if bt > 0 {
			deadline = time.Now().Add(time.Duration(bt) * time.Millisecond)
		}
		for spins := 0; ; spins++ {
			select {
			case tm, ok := <-w.work:
				return tm, ok
			default:
			}
			if bt > 0 && spins&63 == 63 && time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	w.rt.stats.sleeps.Add(1)
	tm, ok := <-w.work
	if ok {
		w.rt.stats.wakeups.Add(1)
	}
	return tm, ok
}

// String summarizes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("openmp.Runtime{threads=%d sched=%s bind=%s lib=%s blocktime=%d red=%s align=%d}",
		rt.opts.NumThreads, rt.opts.Schedule, rt.bind, rt.opts.Library,
		rt.opts.effectiveBlocktimeMS(), rt.opts.Reduction, rt.opts.AlignAlloc)
}
