package openmp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omptune/openmp/profile"
	"omptune/openmp/trace"
)

// budgetUnlimited is the contention-group thread budget used when
// OMP_THREAD_LIMIT is unset: large enough that no realistic nesting depth
// exhausts it, small enough that the int64 arithmetic can never wrap.
const budgetUnlimited = 1 << 30

// Runtime owns a pool of worker goroutines and executes fork–join parallel
// regions over them. Create one with New, use it from a single orchestrating
// goroutine, and release the workers with Close.
//
// The runtime keeps a hot team (libomp's KMP_HOT_TEAMS): the Team, Thread
// structs, construct ring and task pool are allocated once at New and reused
// by every region. Regions are dispatched to workers through a per-team
// generation counter — the dispatcher bumps the team's gen and workers
// observe the new generation on their spin path, so a steady-state Parallel
// call performs no allocations and no channel operations.
//
// Nested parallelism is real: Thread.Parallel forks an inner region whose
// team comes from a per-level hot-team cache (each Thread caches the inner
// team it last forked, so steady-state nested fork–join reuses goroutines
// and allocates nothing). Every team is its own contention group — inner
// barriers, construct rings, task deques and steal scans touch only the
// team's own threads. Widths follow the OMP_NUM_THREADS per-level list,
// OMP_MAX_ACTIVE_LEVELS bounds how deep teams stay wider than one thread,
// and OMP_THREAD_LIMIT is enforced by an atomic global budget: a fork the
// budget cannot cover runs with whatever width was granted, down to
// serialized width 1 — never an error. Calling Runtime.Parallel (rather
// than Thread.Parallel) from inside an active region is the no-context
// nested entry; it serializes to width 1.
type Runtime struct {
	opts      Options
	bind      BindPolicy
	placement []int // thread -> place index; nil when unbound

	regionMu sync.Mutex
	wg       sync.WaitGroup // every worker of every team, for Close
	closed   bool

	// regionActive is set for the duration of an outer region; a
	// Runtime.Parallel call observing it runs as a serialized nested region
	// instead of deadlocking on regionMu (which the outer region holds).
	regionActive atomic.Bool

	// shutdown tells workers returning from await to exit instead of
	// running a region; Close raises it and bumps every live team's gen to
	// release them.
	shutdown atomic.Bool

	hot *Team

	// regionSeq hands out globally unique region ids across all nesting
	// levels — trace events from an inner region must not collapse into
	// their enclosing region's records.
	regionSeq atomic.Uint64

	// nextGtid hands out global thread ids to inner-team workers. Outer
	// threads own ids 0..n-1; an inner team's thread 0 is its parent's
	// goroutine and reuses the parent's gtid (one goroutine = one trace
	// ring), while inner workers draw fresh ids here.
	nextGtid atomic.Int64

	// budget is the remaining OMP_THREAD_LIMIT headroom for nested-team
	// workers: ThreadLimit minus the outer team, budgetUnlimited when the
	// limit is unset. Nested forks reserve from it with CAS
	// (reserveThreads) and cached teams keep their reservation until
	// retired, so steady-state nested dispatch touches no global atomics.
	budget atomic.Int64

	// teams registers every live team (the hot team and all cached nested
	// teams) so Close can release their workers and StartTrace can size
	// its rings.
	teamsMu sync.Mutex
	teams   []*Team

	criticals sync.Map // name -> *sync.Mutex

	stats rtStats

	// tracer is the OMPT-style event collector, nil while tracing is
	// disabled. Every instrumentation site does one atomic load and a nil
	// check, so the untraced hot path stays branch-predictable and
	// allocation-free; see StartTrace.
	tracer atomic.Pointer[trace.Tracer]

	// metrics is the latency-histogram seam, nil while monitoring is
	// disabled; same one-load-plus-nil-check discipline as tracer. See
	// SetMetrics in metrics.go.
	metrics atomic.Pointer[Metrics]

	// profiler is the per-region efficiency profiler seam, nil while
	// profiling is disabled; same discipline again. See StartProfile in
	// profiler.go.
	profiler atomic.Pointer[profile.Profiler]
}

// Stats is a snapshot of runtime activity counters, useful for verifying
// that a configuration exercised the intended code paths (e.g. turnaround
// mode never sleeps) and for calibrating the performance model.
//
// Torn-read contract: the counters are sharded per thread and each shard
// word is read atomically, but Stats() does not stop the world — a snapshot
// taken while a region is executing (from another goroutine) or while
// workers are still winding down their between-region waits can mix counter
// values from different instants. Two guarantees bound the tearing:
//
//   - Region quiescence: when Parallel returns, Regions, NestedRegions,
//     Chunks, TasksRun, TasksStolen and the steal breakdown counters are
//     exact — every increment of those counters happens-before the
//     end-of-region barrier the primary thread passed (nested regions
//     complete strictly inside their enclosing region). Sleeps and Wakeups
//     may still trail, because a worker can exhaust its blocktime and park
//     after the region that released it has ended.
//   - Close: after Close returns, every worker has exited, all counters
//     are final and exact, and Sleeps == Wakeups (each counted sleep was
//     matched by a wake, including the shutdown wake).
type Stats struct {
	Regions     uint64 // parallel regions executed (all nesting levels)
	Sleeps      uint64 // times an idle worker, barrier waiter or task waiter exhausted its blocktime and slept
	Wakeups     uint64 // times a slept worker, barrier waiter or task waiter was woken
	TasksRun    uint64 // explicit tasks executed
	TasksStolen uint64 // tasks taken from another thread's deque
	Chunks      uint64 // worksharing chunks dispatched

	// StealBatches counts steal visits (one KindTaskSteal trace event each);
	// TasksStolen / StealBatches is the mean half-batch size. StealsLocal and
	// StealsRemote split TasksStolen by the victim's NUMA distance from the
	// thief's bound place; both stay zero when the runtime has no placement
	// or no Options.PlaceDistances model (locality unknown).
	StealBatches uint64 // batch steal visits that claimed at least one task
	StealsLocal  uint64 // stolen tasks whose victim was NUMA-local to the thief
	StealsRemote uint64 // stolen tasks whose victim was on a farther NUMA node

	// NestedRegions counts the subset of Regions that ran at nesting level
	// >= 1 (threaded inner teams and serialized width-1 fallbacks alike).
	NestedRegions uint64
}

// Sub returns the counter-wise difference s − prev: the activity between
// two snapshots. Meaningful when both snapshots were taken at region
// quiescence (see the Stats contract).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Regions:       s.Regions - prev.Regions,
		Sleeps:        s.Sleeps - prev.Sleeps,
		Wakeups:       s.Wakeups - prev.Wakeups,
		TasksRun:      s.TasksRun - prev.TasksRun,
		TasksStolen:   s.TasksStolen - prev.TasksStolen,
		Chunks:        s.Chunks - prev.Chunks,
		StealBatches:  s.StealBatches - prev.StealBatches,
		StealsLocal:   s.StealsLocal - prev.StealsLocal,
		StealsRemote:  s.StealsRemote - prev.StealsRemote,
		NestedRegions: s.NestedRegions - prev.NestedRegions,
	}
}

// statShard is one thread's private slice of the runtime counters, padded to
// a whole number of cache lines so two threads bumping their own counters
// never false-share. 10 words of counters + 48 bytes of padding = 128 bytes.
type statShard struct {
	regions       atomic.Uint64
	sleeps        atomic.Uint64
	wakeups       atomic.Uint64
	tasksRun      atomic.Uint64
	tasksStolen   atomic.Uint64
	chunks        atomic.Uint64
	stealBatches  atomic.Uint64
	stealsLocal   atomic.Uint64
	stealsRemote  atomic.Uint64
	nestedRegions atomic.Uint64
	_             [2*cacheLineSize - 80]byte
}

// addInto accumulates the shard into out with atomic loads.
func (sh *statShard) addInto(out *Stats) {
	out.Regions += sh.regions.Load()
	out.Sleeps += sh.sleeps.Load()
	out.Wakeups += sh.wakeups.Load()
	out.TasksRun += sh.tasksRun.Load()
	out.TasksStolen += sh.tasksStolen.Load()
	out.Chunks += sh.chunks.Load()
	out.StealBatches += sh.stealBatches.Load()
	out.StealsLocal += sh.stealsLocal.Load()
	out.StealsRemote += sh.stealsRemote.Load()
	out.NestedRegions += sh.nestedRegions.Load()
}

// rtStats shards the activity counters per thread: shard i of the base
// block belongs to outer-team thread i, and one extra trailing shard
// absorbs sources not tied to a team thread (runtime locks, serialized
// nested fallbacks). Each nested team contributes its own level-tagged
// shard block, registered once at team construction (mutex-guarded append —
// construction is the cold path; the per-thread increments stay
// uncontended). Stats() aggregates across all blocks.
type rtStats struct {
	shards []statShard

	mu     sync.Mutex
	nested []*nestedShards
}

// nestedShards is one nested team's counter block, tagged with the team's
// nesting level for LevelStats.
type nestedShards struct {
	level  int
	shards []statShard
}

func (s *rtStats) shard(i int) *statShard { return &s.shards[i] }

// misc returns the shard for accounting outside any team thread.
func (s *rtStats) misc() *statShard { return &s.shards[len(s.shards)-1] }

// registerNested adds a nested team's shard block to the aggregation set.
func (s *rtStats) registerNested(b *nestedShards) {
	s.mu.Lock()
	s.nested = append(s.nested, b)
	s.mu.Unlock()
}

// nestedBlocks snapshots the registered block list. The slice header is
// copied under the mutex; blocks already in it are never mutated, so the
// caller may read them lock-free.
func (s *rtStats) nestedBlocks() []*nestedShards {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nested
}

// New validates opts and starts NumThreads-1 worker goroutines (the caller
// of Parallel acts as thread 0). Serial mode starts no workers. When
// OMP_THREAD_LIMIT is smaller than the requested team, the team is clamped
// to it — the spec's thread-limit-var bounds the whole contention group,
// outer team included.
func New(opts Options) (*Runtime, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.ThreadLimit > 0 && opts.NumThreads > opts.ThreadLimit {
		opts.NumThreads = opts.ThreadLimit
	}
	rt := &Runtime{
		opts: opts,
		bind: opts.effectiveBind(),
	}
	n := rt.NumThreads()
	rt.stats.shards = make([]statShard, n+1)
	rt.placement = AssignPlaces(len(opts.Places), rt.bind, opts.NumThreads, 0)
	rt.nextGtid.Store(int64(n))
	if opts.ThreadLimit > 0 {
		rt.budget.Store(int64(opts.ThreadLimit - n))
	} else {
		rt.budget.Store(budgetUnlimited)
	}
	rt.hot = newTeam(rt, n)
	if n > 1 {
		rt.hot.activeLevels = 1
	}
	rt.registerTeam(rt.hot)
	rt.hot.spawnWorkers()
	return rt, nil
}

// MustNew is New but panics on error; convenient for examples and tests.
func MustNew(opts Options) *Runtime {
	rt, err := New(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// Options returns the configuration the runtime was built with.
func (rt *Runtime) Options() Options { return rt.opts }

// NumThreads returns the team size of outer parallel regions (1 in serial
// mode).
func (rt *Runtime) NumThreads() int {
	if rt.opts.Library == LibSerial {
		return 1
	}
	return rt.opts.NumThreads
}

// Placement returns a copy of the thread→place assignment, or nil when
// threads are unbound (OMP_PROC_BIND=false).
func (rt *Runtime) Placement() []int {
	if rt.placement == nil {
		return nil
	}
	out := make([]int, len(rt.placement))
	copy(out, rt.placement)
	return out
}

// registerTeam adds a team to the live-team registry (Close, StartTrace).
func (rt *Runtime) registerTeam(tm *Team) {
	rt.teamsMu.Lock()
	rt.teams = append(rt.teams, tm)
	rt.teamsMu.Unlock()
}

// liveTeams snapshots the registry.
func (rt *Runtime) liveTeams() []*Team {
	rt.teamsMu.Lock()
	defer rt.teamsMu.Unlock()
	return rt.teams
}

// reserveThreads claims up to want workers from the contention-group thread
// budget and returns how many it got (possibly 0). A single CAS loop on one
// atomic counter keeps concurrent nested forks from different threads from
// collectively overshooting OMP_THREAD_LIMIT.
func (rt *Runtime) reserveThreads(want int) int {
	for {
		cur := rt.budget.Load()
		grant := int64(want)
		if grant > cur {
			grant = cur
		}
		if grant <= 0 {
			return 0
		}
		if rt.budget.CompareAndSwap(cur, cur-grant) {
			return int(grant)
		}
	}
}

// releaseThreads returns a reservation to the budget (team retirement).
func (rt *Runtime) releaseThreads(n int) {
	if n > 0 {
		rt.budget.Add(int64(n))
	}
}

// Stats returns a snapshot of the activity counters, aggregated across the
// per-thread shards of every team (outer and nested). See the Stats type
// for when the snapshot is exact and when it may be torn.
func (rt *Runtime) Stats() Stats {
	var out Stats
	for i := range rt.stats.shards {
		rt.stats.shards[i].addInto(&out)
	}
	for _, b := range rt.stats.nestedBlocks() {
		for i := range b.shards {
			b.shards[i].addInto(&out)
		}
	}
	return out
}

// LevelStats returns the counters attributable to one nesting level: level
// 0 is the outer team (including the runtime-misc shard, which also absorbs
// serialized width-1 nested fallbacks), level 1 the teams forked from
// inside level-0 regions, and so on. The same torn-read contract as Stats
// applies.
func (rt *Runtime) LevelStats(level int) Stats {
	var out Stats
	if level == 0 {
		for i := range rt.stats.shards {
			rt.stats.shards[i].addInto(&out)
		}
	}
	for _, b := range rt.stats.nestedBlocks() {
		if b.level != level {
			continue
		}
		for i := range b.shards {
			b.shards[i].addInto(&out)
		}
	}
	return out
}

// StealOrder returns, per thread, the victim scan order task stealing uses:
// the other thread ids sorted by NUMA distance from the thread's bound
// place, nearest first (ring order within a distance class). It returns nil
// when the runtime has no placement or no Options.PlaceDistances model, in
// which case stealing uses a rotating uniform scan instead.
func (rt *Runtime) StealOrder() [][]int {
	if rt.hot == nil || rt.hot.stealOrder == nil {
		return nil
	}
	out := make([][]int, len(rt.hot.stealOrder))
	for i, row := range rt.hot.stealOrder {
		r := make([]int, len(row))
		for j, v := range row {
			r[j] = int(v)
		}
		out[i] = r
	}
	return out
}

// StartTrace enables OMPT-style event tracing with the given per-thread
// ring capacity in events (0 means trace.DefaultBufferSize). Rings are
// preallocated here, one per global thread id live at this point — outer
// threads plus every cached inner-team worker. Inner-team workers created
// *after* StartTrace have no ring and trace nothing (their emits are
// silently ignored); fork the nested regions once (a warmup run) before
// tracing to capture them. Once tracing is on, emitting an event costs one
// timestamp read and one ring store, and a full ring drops new events
// rather than blocking. Tracing a runtime that is already tracing or
// closed is an error.
func (rt *Runtime) StartTrace(eventsPerThread int) error {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		return errors.New("openmp: StartTrace on closed Runtime")
	}
	if rt.tracer.Load() != nil {
		return errors.New("openmp: StartTrace while already tracing")
	}
	rt.tracer.Store(trace.New(int(rt.nextGtid.Load()), eventsPerThread))
	return nil
}

// StopTrace disables tracing and returns the collected, time-ordered
// events. Returns an empty Data when tracing was not enabled.
//
// A worker emits its end-of-region BarrierLeave/ImplicitEnd after the
// primary thread has already passed the join barrier, so those records can
// still be in flight when Parallel returns. StopTrace therefore first swaps
// the tracer out (new events stop) and then dispatches one untraced no-op
// flush region that recurses into every cached inner team: each worker's
// pending emits precede its flush-barrier arrival, which precedes its
// dispatcher's barrier pass, so by the time the flush returns every traced
// event — inner teams included — has been published to its ring. Workers
// parking after the flush may race the drain with park/wake instants, which
// the rings' single-producer single-consumer protocol permits; such
// stragglers are simply not collected.
func (rt *Runtime) StopTrace() trace.Data {
	rt.regionMu.Lock()
	tr := rt.tracer.Swap(nil)
	if tr == nil {
		rt.regionMu.Unlock()
		return trace.Data{}
	}
	if !rt.closed {
		// No-op flush region (invisible to the Regions counter and the
		// metrics seam): purely a synchronization flush, recursing into each
		// thread's cached inner team.
		rt.regionActive.Store(true)
		rt.hot.dispatchRegion(func(th *Thread) { th.flushNested() }, false, 0)
		rt.regionActive.Store(false)
	}
	rt.regionMu.Unlock()
	return tr.Collect()
}

// flushNested dispatches the recursive no-op flush through this thread's
// cached inner team, if any (see StopTrace).
func (th *Thread) flushNested() {
	if th.inner != nil {
		th.inner.dispatchRegion(func(ith *Thread) { ith.flushNested() }, false, 0)
	}
}

// Close shuts every worker pool down — the outer team and all cached nested
// teams — and waits for the goroutines to exit. The runtime must not be
// used afterwards. Close is idempotent.
//
// Close is the exact-snapshot point of the Stats contract: a Stats() call
// after Close returns final counter values, with Sleeps == Wakeups.
func (rt *Runtime) Close() {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	// Order matters: shutdown is raised before the gen bumps, so any worker
	// released by a bump observes it and exits. regionMu being free means
	// no outer region is active, hence every inner worker is idle in await
	// too — the bumps release all of them exactly once.
	rt.shutdown.Store(true)
	for _, tm := range rt.liveTeams() {
		tm.gen.Add(1)
		for _, w := range tm.workers {
			w.wakeIfParked()
		}
	}
	rt.wg.Wait()
}

// Parallel executes body once per team thread, concurrently, and returns
// after the implicit end-of-region barrier (which first drains any
// outstanding explicit tasks). The calling goroutine participates as thread
// 0, exactly like the primary thread of an OpenMP team.
//
// Calling Parallel from inside an active region (any goroutine) is the
// nested entry without a Thread context: the body runs as a serialized
// width-1 nested region on the calling goroutine. Thread.Parallel is the
// threaded nested fork — prefer it inside region bodies.
func (rt *Runtime) Parallel(body func(th *Thread)) {
	var pc uintptr
	if rt.profiler.Load() != nil {
		pc = callerPC()
	}
	rt.parallel(pc, body)
}

// parallel is Parallel with the profiler's construct identity already
// captured — each exported entry point records its own caller, so distinct
// ParallelFor call sites never alias through the shared internal path.
func (rt *Runtime) parallel(pc uintptr, body func(th *Thread)) {
	if rt.regionActive.Load() {
		// The outer region holds regionMu for its whole duration, so the
		// nested path must not touch it. This cold fallback allocates a
		// transient width-1 team per call; counters land on the misc shard.
		rt.nestedSerial(pc, body)
		return
	}
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		panic("openmp: Parallel called on closed Runtime")
	}
	rt.regionActive.Store(true)
	rt.hot.dispatchRegion(body, true, pc)
	rt.regionActive.Store(false)
}

// nestedSerial runs body as a width-1 nested region on the calling
// goroutine. The transient team keeps the full Thread surface usable
// (worksharing, tasks, reductions all collapse to serial execution); its
// events are not traced and not profiled (the goroutine owns no trace ring,
// and the team has no profiler thread ids).
func (rt *Runtime) nestedSerial(pc uintptr, body func(th *Thread)) {
	tm := newTransientTeam(rt, 1)
	tm.dispatchRegion(body, true, pc)
}

// ParallelFor is shorthand for a region containing a single worksharing
// loop over [0, n).
func (rt *Runtime) ParallelFor(n int, body func(i int)) {
	var pc uintptr
	if rt.profiler.Load() != nil {
		pc = callerPC()
	}
	rt.parallel(pc, func(th *Thread) { th.For(n, body) })
}

// ParallelReduceSum runs body over [0, n) and returns the sum of its return
// values, combined with the configured reduction method.
func (rt *Runtime) ParallelReduceSum(n int, body func(i int) float64) float64 {
	var pc uintptr
	if rt.profiler.Load() != nil {
		pc = callerPC()
	}
	var out float64
	rt.parallel(pc, func(th *Thread) {
		local := 0.0
		th.ForNowait(n, func(i int) { local += body(i) })
		v := th.ReduceSum(local)
		if th.ID() == 0 {
			out = v
		}
	})
	return out
}

// criticalFor returns the process-wide lock for the named critical section.
// The fast path is a lock-free sync.Map load: after a name's first use,
// Critical never touches a global mutex to find its lock.
func (rt *Runtime) criticalFor(name string) *sync.Mutex {
	if mu, ok := rt.criticals.Load(name); ok {
		return mu.(*sync.Mutex)
	}
	mu, _ := rt.criticals.LoadOrStore(name, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// worker is one pooled thread of one team (outer or nested). Between
// regions it waits for its team's region generation to advance according to
// the wait policy: spin while the blocktime budget lasts, then park on the
// wake channel until the dispatcher posts a token.
type worker struct {
	tm     *Team
	slot   int    // index into tm.threads
	seen   uint64 // last team generation executed
	parked atomic.Bool
	wake   chan struct{} // 1-buffered wake tokens
}

func (w *worker) loop() {
	rt := w.tm.rt
	defer w.tm.wg.Done()
	defer rt.wg.Done()
	for {
		w.await()
		if rt.shutdown.Load() || w.tm.retired.Load() {
			return
		}
		w.tm.run(w.slot)
	}
}

// await blocks until the team's region generation advances past the last
// region this worker executed, per the KMP_BLOCKTIME / KMP_LIBRARY wait
// policy. With an infinite budget (turnaround mode or
// KMP_BLOCKTIME=infinite) the worker spins — yielding the processor but
// never blocking. With a zero budget it parks immediately. Otherwise it
// spins until the budget expires and then parks; being woken from a park is
// the expensive path the paper's turnaround-mode findings hinge on.
//
// A worker can lag at most one generation behind: a region's end barrier
// cannot pass without every worker, so tm.gen is at most seen+1 here.
func (w *worker) await() {
	tm := w.tm
	rt := tm.rt
	next := w.seen + 1
	bt := rt.opts.effectiveBlocktimeMS()
	if bt != 0 {
		var deadline time.Time
		if bt > 0 {
			deadline = time.Now().Add(time.Duration(bt) * time.Millisecond)
		}
		for spins := 0; ; spins++ {
			if tm.gen.Load() >= next {
				w.seen = next
				return
			}
			if bt > 0 && spins&63 == 63 && time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	gtid := int(tm.threads[w.slot].gtid)
	for {
		// Drain any stale token so a park cannot be satisfied by a wake
		// meant for an earlier generation.
		select {
		case <-w.wake:
		default:
		}
		w.parked.Store(true)
		// Re-check after advertising the park: either this load sees the
		// dispatched generation (work raced in during the last spins — no
		// sleep happened, so none is counted), or the dispatcher's
		// parked.Load() sees true and posts a token. Never neither.
		if tm.gen.Load() >= next {
			w.parked.Store(false)
			w.seen = next
			return
		}
		if tr := rt.tracer.Load(); tr != nil {
			tr.Emit(gtid, tm.level, trace.KindPark, 0, 0)
		}
		w.stats().sleeps.Add(1)
		<-w.wake
		w.stats().wakeups.Add(1)
		if tr := rt.tracer.Load(); tr != nil {
			tr.Emit(gtid, tm.level, trace.KindWake, 0, 0)
		}
		w.parked.Store(false)
	}
}

// stats returns the shard of the team thread this worker runs as.
func (w *worker) stats() *statShard { return w.tm.threads[w.slot].stats }

// wakeIfParked posts a wake token if the worker has advertised a park. The
// send is non-blocking: a token already in the buffer serves the same
// purpose.
func (w *worker) wakeIfParked() {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// String summarizes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("openmp.Runtime{threads=%d sched=%s bind=%s lib=%s blocktime=%d red=%s align=%d}",
		rt.opts.NumThreads, rt.opts.Schedule, rt.bind, rt.opts.Library,
		rt.opts.effectiveBlocktimeMS(), rt.opts.Reduction, rt.opts.AlignAlloc)
}
