package openmp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omptune/openmp/trace"
)

// Runtime owns a pool of worker goroutines and executes fork–join parallel
// regions over them. Create one with New, use it from a single orchestrating
// goroutine, and release the workers with Close. Parallel regions may not be
// nested: calling Parallel from inside a region panics (OpenMP nested
// parallelism is disabled in this runtime, exactly as with OMP_NESTED=false).
//
// The runtime keeps a hot team (libomp's KMP_HOT_TEAMS): the Team, Thread
// structs, construct ring and task pool are allocated once at New and reused
// by every region. Regions are dispatched to workers through a generation
// counter — the dispatcher bumps rt.regionGen and workers observe the new
// generation on their spin path, so a steady-state Parallel call performs no
// allocations and no channel operations.
type Runtime struct {
	opts      Options
	bind      BindPolicy
	placement []int // thread -> place index; nil when unbound

	regionMu sync.Mutex
	workers  []*worker
	wg       sync.WaitGroup
	closed   bool

	// regionActive guards against nested Parallel: it is set for the
	// duration of a region, and any Parallel call observing it panics
	// instead of deadlocking on regionMu.
	regionActive atomic.Bool

	// shutdown tells workers returning from await to exit instead of
	// running a region; Close raises it and bumps regionGen to release them.
	shutdown atomic.Bool

	hot       *Team
	regionGen atomic.Uint64

	criticals sync.Map // name -> *sync.Mutex

	stats rtStats

	// tracer is the OMPT-style event collector, nil while tracing is
	// disabled. Every instrumentation site does one atomic load and a nil
	// check, so the untraced hot path stays branch-predictable and
	// allocation-free; see StartTrace.
	tracer atomic.Pointer[trace.Tracer]

	// metrics is the latency-histogram seam, nil while monitoring is
	// disabled; same one-load-plus-nil-check discipline as tracer. See
	// SetMetrics in metrics.go.
	metrics atomic.Pointer[Metrics]
}

// Stats is a snapshot of runtime activity counters, useful for verifying
// that a configuration exercised the intended code paths (e.g. turnaround
// mode never sleeps) and for calibrating the performance model.
//
// Torn-read contract: the counters are sharded per thread and each shard
// word is read atomically, but Stats() does not stop the world — a snapshot
// taken while a region is executing (from another goroutine) or while
// workers are still winding down their between-region waits can mix counter
// values from different instants. Two guarantees bound the tearing:
//
//   - Region quiescence: when Parallel returns, Regions, Chunks, TasksRun,
//     TasksStolen and the steal breakdown counters are exact — every
//     increment of those counters happens-before the end-of-region barrier
//     the primary thread passed. Sleeps and Wakeups may still trail, because
//     a worker can exhaust its blocktime and park after the region that
//     released it has ended.
//   - Close: after Close returns, every worker has exited, all counters
//     are final and exact, and Sleeps == Wakeups (each counted sleep was
//     matched by a wake, including the shutdown wake).
type Stats struct {
	Regions     uint64 // parallel regions executed
	Sleeps      uint64 // times an idle worker, barrier waiter or task waiter exhausted its blocktime and slept
	Wakeups     uint64 // times a slept worker, barrier waiter or task waiter was woken
	TasksRun    uint64 // explicit tasks executed
	TasksStolen uint64 // tasks taken from another thread's deque
	Chunks      uint64 // worksharing chunks dispatched

	// StealBatches counts steal visits (one KindTaskSteal trace event each);
	// TasksStolen / StealBatches is the mean half-batch size. StealsLocal and
	// StealsRemote split TasksStolen by the victim's NUMA distance from the
	// thief's bound place; both stay zero when the runtime has no placement
	// or no Options.PlaceDistances model (locality unknown).
	StealBatches uint64 // batch steal visits that claimed at least one task
	StealsLocal  uint64 // stolen tasks whose victim was NUMA-local to the thief
	StealsRemote uint64 // stolen tasks whose victim was on a farther NUMA node
}

// Sub returns the counter-wise difference s − prev: the activity between
// two snapshots. Meaningful when both snapshots were taken at region
// quiescence (see the Stats contract).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Regions:      s.Regions - prev.Regions,
		Sleeps:       s.Sleeps - prev.Sleeps,
		Wakeups:      s.Wakeups - prev.Wakeups,
		TasksRun:     s.TasksRun - prev.TasksRun,
		TasksStolen:  s.TasksStolen - prev.TasksStolen,
		Chunks:       s.Chunks - prev.Chunks,
		StealBatches: s.StealBatches - prev.StealBatches,
		StealsLocal:  s.StealsLocal - prev.StealsLocal,
		StealsRemote: s.StealsRemote - prev.StealsRemote,
	}
}

// statShard is one thread's private slice of the runtime counters, padded to
// a whole number of cache lines so two threads bumping their own counters
// never false-share. 9 words of counters + 56 bytes of padding = 128 bytes.
type statShard struct {
	regions      atomic.Uint64
	sleeps       atomic.Uint64
	wakeups      atomic.Uint64
	tasksRun     atomic.Uint64
	tasksStolen  atomic.Uint64
	chunks       atomic.Uint64
	stealBatches atomic.Uint64
	stealsLocal  atomic.Uint64
	stealsRemote atomic.Uint64
	_            [2*cacheLineSize - 72]byte
}

// rtStats shards the activity counters per thread: shard i belongs to team
// thread i, and one extra trailing shard absorbs sources not tied to a team
// thread (runtime locks). Stats() aggregates across shards, trading a
// slightly costlier snapshot for uncontended hot-path increments — the old
// single atomic.Uint64 per counter put every dispatched chunk of every
// thread on the same cache line.
type rtStats struct {
	shards []statShard
}

func (s *rtStats) shard(i int) *statShard { return &s.shards[i] }

// misc returns the shard for accounting outside any team thread.
func (s *rtStats) misc() *statShard { return &s.shards[len(s.shards)-1] }

// New validates opts and starts NumThreads-1 worker goroutines (the caller
// of Parallel acts as thread 0). Serial mode starts no workers.
func New(opts Options) (*Runtime, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts: opts,
		bind: opts.effectiveBind(),
	}
	n := rt.NumThreads()
	rt.stats.shards = make([]statShard, n+1)
	rt.placement = AssignPlaces(len(opts.Places), rt.bind, opts.NumThreads, 0)
	rt.hot = newTeam(rt, n)
	rt.workers = make([]*worker, n-1)
	for i := range rt.workers {
		w := &worker{rt: rt, id: i, wake: make(chan struct{}, 1)}
		rt.workers[i] = w
		rt.wg.Add(1)
		go w.loop()
	}
	return rt, nil
}

// MustNew is New but panics on error; convenient for examples and tests.
func MustNew(opts Options) *Runtime {
	rt, err := New(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// Options returns the configuration the runtime was built with.
func (rt *Runtime) Options() Options { return rt.opts }

// NumThreads returns the team size of parallel regions (1 in serial mode).
func (rt *Runtime) NumThreads() int {
	if rt.opts.Library == LibSerial {
		return 1
	}
	return rt.opts.NumThreads
}

// Placement returns a copy of the thread→place assignment, or nil when
// threads are unbound (OMP_PROC_BIND=false).
func (rt *Runtime) Placement() []int {
	if rt.placement == nil {
		return nil
	}
	out := make([]int, len(rt.placement))
	copy(out, rt.placement)
	return out
}

// Stats returns a snapshot of the activity counters, aggregated across the
// per-thread shards. See the Stats type for when the snapshot is exact and
// when it may be torn.
func (rt *Runtime) Stats() Stats {
	var out Stats
	for i := range rt.stats.shards {
		sh := &rt.stats.shards[i]
		out.Regions += sh.regions.Load()
		out.Sleeps += sh.sleeps.Load()
		out.Wakeups += sh.wakeups.Load()
		out.TasksRun += sh.tasksRun.Load()
		out.TasksStolen += sh.tasksStolen.Load()
		out.Chunks += sh.chunks.Load()
		out.StealBatches += sh.stealBatches.Load()
		out.StealsLocal += sh.stealsLocal.Load()
		out.StealsRemote += sh.stealsRemote.Load()
	}
	return out
}

// StealOrder returns, per thread, the victim scan order task stealing uses:
// the other thread ids sorted by NUMA distance from the thread's bound
// place, nearest first (ring order within a distance class). It returns nil
// when the runtime has no placement or no Options.PlaceDistances model, in
// which case stealing uses a rotating uniform scan instead.
func (rt *Runtime) StealOrder() [][]int {
	if rt.hot == nil || rt.hot.stealOrder == nil {
		return nil
	}
	out := make([][]int, len(rt.hot.stealOrder))
	for i, row := range rt.hot.stealOrder {
		r := make([]int, len(row))
		for j, v := range row {
			r[j] = int(v)
		}
		out[i] = r
	}
	return out
}

// StartTrace enables OMPT-style event tracing with the given per-thread
// ring capacity in events (0 means trace.DefaultBufferSize). Rings are
// preallocated here; once tracing is on, emitting an event costs one
// timestamp read and one ring store, and a full ring drops new events
// rather than blocking. Tracing a runtime that is already tracing or
// closed is an error.
func (rt *Runtime) StartTrace(eventsPerThread int) error {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		return errors.New("openmp: StartTrace on closed Runtime")
	}
	if rt.tracer.Load() != nil {
		return errors.New("openmp: StartTrace while already tracing")
	}
	rt.tracer.Store(trace.New(rt.NumThreads(), eventsPerThread))
	return nil
}

// StopTrace disables tracing and returns the collected, time-ordered
// events. Returns an empty Data when tracing was not enabled.
//
// A worker emits its end-of-region BarrierLeave/ImplicitEnd after the
// primary thread has already passed the join barrier, so those records can
// still be in flight when Parallel returns. StopTrace therefore first swaps
// the tracer out (new events stop) and then dispatches one untraced no-op
// flush region: each worker's pending emits precede its flush-barrier
// arrival, which precedes the primary's barrier pass, so by the time the
// flush returns every traced event has been published to its ring. Workers
// parking after the flush may race the drain with park/wake instants, which
// the rings' single-producer single-consumer protocol permits; such
// stragglers are simply not collected.
func (rt *Runtime) StopTrace() trace.Data {
	rt.regionMu.Lock()
	tr := rt.tracer.Swap(nil)
	if tr == nil {
		rt.regionMu.Unlock()
		return trace.Data{}
	}
	if !rt.closed {
		// Inline no-op region (Parallel minus the stats bump, invisible to
		// the Regions counter): purely a synchronization flush.
		rt.regionActive.Store(true)
		tm := rt.hot
		tm.body = func(*Thread) {}
		rt.regionGen.Add(1)
		for _, w := range rt.workers {
			w.wakeIfParked()
		}
		tm.run(0)
		tm.body = nil
		rt.regionActive.Store(false)
	}
	rt.regionMu.Unlock()
	return tr.Collect()
}

// Close shuts the worker pool down and waits for the goroutines to exit.
// The runtime must not be used afterwards. Close is idempotent.
//
// Close is the exact-snapshot point of the Stats contract: a Stats() call
// after Close returns final counter values, with Sleeps == Wakeups.
func (rt *Runtime) Close() {
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	rt.shutdown.Store(true)
	rt.regionGen.Add(1)
	for _, w := range rt.workers {
		w.wakeIfParked()
	}
	rt.wg.Wait()
}

// Parallel executes body once per team thread, concurrently, and returns
// after the implicit end-of-region barrier (which first drains any
// outstanding explicit tasks). The calling goroutine participates as thread
// 0, exactly like the primary thread of an OpenMP team.
func (rt *Runtime) Parallel(body func(th *Thread)) {
	if rt.regionActive.Load() {
		panic("openmp: nested Parallel: Parallel called while a region is active (nested parallelism is disabled; use ParallelN or restructure the region)")
	}
	rt.regionMu.Lock()
	defer rt.regionMu.Unlock()
	if rt.closed {
		panic("openmp: Parallel called on closed Runtime")
	}
	rt.regionActive.Store(true)
	tm := rt.hot
	tm.threads[0].stats.regions.Add(1)
	tm.body = body
	// The fork event is emitted before the generation bump (only the
	// dispatcher advances regionGen, so Load()+1 is the region about to
	// run), guaranteeing it precedes every worker event of the region.
	tr := rt.tracer.Load()
	var gen uint64
	if tr != nil {
		gen = rt.regionGen.Load() + 1
		tr.Emit(0, trace.KindRegionFork, gen, int64(tm.n))
	}
	// Fork-to-join latency: the clock starts before the generation bump so
	// the measured span covers the whole dispatch (wakes included), and
	// stops after the primary passes the join barrier. One pointer load
	// when monitoring is off.
	mets := rt.metrics.Load()
	var forkAt time.Time
	if mets != nil && mets.Region != nil {
		forkAt = time.Now()
	}
	// Publish the region: the regionGen bump is the release edge workers
	// acquire tm.body through; parked workers additionally get a wake token.
	rt.regionGen.Add(1)
	for _, w := range rt.workers {
		w.wakeIfParked()
	}
	tm.run(0)
	// The end-of-region barrier doubles as the join: every worker has
	// finished the body (its last tm accesses precede its barrier arrival,
	// which precedes the primary's barrier pass).
	if mets != nil && mets.Region != nil {
		mets.Region.Observe(time.Since(forkAt))
	}
	if tr != nil {
		tr.Emit(0, trace.KindRegionJoin, gen, 0)
	}
	tm.body = nil
	rt.regionActive.Store(false)
}

// ParallelFor is shorthand for a region containing a single worksharing
// loop over [0, n).
func (rt *Runtime) ParallelFor(n int, body func(i int)) {
	rt.Parallel(func(th *Thread) { th.For(n, body) })
}

// ParallelReduceSum runs body over [0, n) and returns the sum of its return
// values, combined with the configured reduction method.
func (rt *Runtime) ParallelReduceSum(n int, body func(i int) float64) float64 {
	var out float64
	rt.Parallel(func(th *Thread) {
		local := 0.0
		th.ForNowait(n, func(i int) { local += body(i) })
		v := th.ReduceSum(local)
		if th.ID() == 0 {
			out = v
		}
	})
	return out
}

// criticalFor returns the process-wide lock for the named critical section.
// The fast path is a lock-free sync.Map load: after a name's first use,
// Critical never touches a global mutex to find its lock.
func (rt *Runtime) criticalFor(name string) *sync.Mutex {
	if mu, ok := rt.criticals.Load(name); ok {
		return mu.(*sync.Mutex)
	}
	mu, _ := rt.criticals.LoadOrStore(name, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// worker is one pooled thread. Between regions it waits for the region
// generation to advance according to the wait policy: spin while the
// blocktime budget lasts, then park on the wake channel until the
// dispatcher posts a token.
type worker struct {
	rt     *Runtime
	id     int    // team thread id is id+1
	seen   uint64 // last region generation executed
	parked atomic.Bool
	wake   chan struct{} // 1-buffered wake tokens
}

func (w *worker) loop() {
	defer w.rt.wg.Done()
	for {
		w.await()
		if w.rt.shutdown.Load() {
			return
		}
		w.rt.hot.run(w.id + 1)
	}
}

// await blocks until the region generation advances past the last region
// this worker executed, per the KMP_BLOCKTIME / KMP_LIBRARY wait policy.
// With an infinite budget (turnaround mode or KMP_BLOCKTIME=infinite) the
// worker spins — yielding the processor but never blocking. With a zero
// budget it parks immediately. Otherwise it spins until the budget expires
// and then parks; being woken from a park is the expensive path the paper's
// turnaround-mode findings hinge on.
//
// A worker can lag at most one generation behind: a region's end barrier
// cannot pass without every worker, so regionGen is at most seen+1 here.
func (w *worker) await() {
	rt := w.rt
	next := w.seen + 1
	bt := rt.opts.effectiveBlocktimeMS()
	if bt != 0 {
		var deadline time.Time
		if bt > 0 {
			deadline = time.Now().Add(time.Duration(bt) * time.Millisecond)
		}
		for spins := 0; ; spins++ {
			if rt.regionGen.Load() >= next {
				w.seen = next
				return
			}
			if bt > 0 && spins&63 == 63 && time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	for {
		// Drain any stale token so a park cannot be satisfied by a wake
		// meant for an earlier generation.
		select {
		case <-w.wake:
		default:
		}
		w.parked.Store(true)
		// Re-check after advertising the park: either this load sees the
		// dispatched generation (work raced in during the last spins — no
		// sleep happened, so none is counted), or the dispatcher's
		// parked.Load() sees true and posts a token. Never neither.
		if rt.regionGen.Load() >= next {
			w.parked.Store(false)
			w.seen = next
			return
		}
		if tr := rt.tracer.Load(); tr != nil {
			tr.Emit(w.id+1, trace.KindPark, next, 0)
		}
		w.stats().sleeps.Add(1)
		<-w.wake
		w.stats().wakeups.Add(1)
		if tr := rt.tracer.Load(); tr != nil {
			tr.Emit(w.id+1, trace.KindWake, next, 0)
		}
		w.parked.Store(false)
	}
}

// stats returns the shard of the team thread this worker runs as.
func (w *worker) stats() *statShard { return w.rt.stats.shard(w.id + 1) }

// wakeIfParked posts a wake token if the worker has advertised a park. The
// send is non-blocking: a token already in the buffer serves the same
// purpose.
func (w *worker) wakeIfParked() {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// String summarizes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("openmp.Runtime{threads=%d sched=%s bind=%s lib=%s blocktime=%d red=%s align=%d}",
		rt.opts.NumThreads, rt.opts.Schedule, rt.bind, rt.opts.Library,
		rt.opts.effectiveBlocktimeMS(), rt.opts.Reduction, rt.opts.AlignAlloc)
}
