package openmp

import (
	"sync/atomic"
	"testing"
)

func testRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	rt, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func optsN(n int) Options {
	o := DefaultOptions()
	o.NumThreads = n
	o.BlocktimeMS = 0 // sleep immediately: cheapest on a 1-CPU host
	return o
}

func TestParallelRunsEveryThreadOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		rt := testRuntime(t, optsN(n))
		seen := make([]int32, n)
		rt.Parallel(func(th *Thread) {
			atomic.AddInt32(&seen[th.ID()], 1)
			if th.NumThreads() != n {
				t.Errorf("NumThreads = %d, want %d", th.NumThreads(), n)
			}
		})
		for id, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: thread %d ran %d times, want 1", n, id, c)
			}
		}
	}
}

func TestParallelReusableAcrossRegions(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	var total atomic.Int64
	for r := 0; r < 50; r++ {
		rt.Parallel(func(th *Thread) { total.Add(1) })
	}
	if got := total.Load(); got != 200 {
		t.Errorf("50 regions x 4 threads = %d executions, want 200", got)
	}
	if got := rt.Stats().Regions; got != 50 {
		t.Errorf("Stats().Regions = %d, want 50", got)
	}
}

func TestSerialModeRunsInline(t *testing.T) {
	o := optsN(8)
	o.Library = LibSerial
	rt := testRuntime(t, o)
	if rt.NumThreads() != 1 {
		t.Fatalf("serial NumThreads = %d, want 1", rt.NumThreads())
	}
	ran := 0
	rt.Parallel(func(th *Thread) {
		ran++
		if th.ID() != 0 {
			t.Errorf("serial thread id = %d, want 0", th.ID())
		}
	})
	if ran != 1 {
		t.Errorf("serial region ran %d times, want 1", ran)
	}
}

func TestCloseIdempotentAndPanicsAfterUse(t *testing.T) {
	rt := MustNew(optsN(2))
	rt.Close()
	rt.Close() // must not panic or deadlock
	defer func() {
		if recover() == nil {
			t.Error("Parallel after Close should panic")
		}
	}()
	rt.Parallel(func(*Thread) {})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 4
	rt := testRuntime(t, optsN(n))
	var phase1, phase2 atomic.Int32
	rt.Parallel(func(th *Thread) {
		phase1.Add(1)
		th.Barrier()
		if got := phase1.Load(); got != n {
			t.Errorf("thread %d passed barrier with phase1=%d, want %d", th.ID(), got, n)
		}
		phase2.Add(1)
	})
	if phase2.Load() != n {
		t.Errorf("phase2 = %d, want %d", phase2.Load(), n)
	}
}

func TestMasterAndSingle(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	var masterRuns, singleRuns atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Master(func() { masterRuns.Add(1) })
		th.Single(func() { singleRuns.Add(1) })
		th.Barrier()
		th.Single(func() { singleRuns.Add(1) }) // a second single construct
	})
	if masterRuns.Load() != 1 {
		t.Errorf("master ran %d times, want 1", masterRuns.Load())
	}
	if singleRuns.Load() != 2 {
		t.Errorf("two single constructs ran %d times total, want 2", singleRuns.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	rt := testRuntime(t, optsN(8))
	counter := 0 // unsynchronized on purpose; Critical must protect it
	rt.Parallel(func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.Critical("ctr", func() { counter++ })
		}
	})
	if counter != 8*200 {
		t.Errorf("counter = %d, want %d", counter, 8*200)
	}
}

func TestCriticalDistinctNamesAreIndependentLocks(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	a, b := 0, 0
	rt.Parallel(func(th *Thread) {
		th.Critical("a", func() { a++ })
		th.Critical("b", func() { b++ })
	})
	if a != 2 || b != 2 {
		t.Errorf("a=%d b=%d, want 2 2", a, b)
	}
}

func TestPlacementBookkeeping(t *testing.T) {
	o := optsN(4)
	o.Places = []PlaceSpec{{Cores: []int{0}}, {Cores: []int{1}}, {Cores: []int{2}}, {Cores: []int{3}}}
	o.Bind = BindClose
	rt := testRuntime(t, o)
	got := rt.Placement()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Placement[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	rt.Parallel(func(th *Thread) {
		if th.Place() != th.ID() {
			t.Errorf("thread %d on place %d, want %d", th.ID(), th.Place(), th.ID())
		}
	})
}

func TestUnboundPlacementIsNil(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	if rt.Placement() != nil {
		t.Errorf("unbound Placement = %v, want nil", rt.Placement())
	}
	rt.Parallel(func(th *Thread) {
		if th.Place() != -1 {
			t.Errorf("unbound Place() = %d, want -1", th.Place())
		}
	})
}

func TestWaitPolicySleepAndWake(t *testing.T) {
	// Blocktime 0: workers sleep immediately; every dispatched region wakes them.
	o := optsN(3)
	rt := testRuntime(t, o)
	for i := 0; i < 5; i++ {
		rt.Parallel(func(*Thread) {})
	}
	st := rt.Stats()
	if st.Sleeps == 0 {
		t.Error("blocktime=0: expected workers to sleep, Stats().Sleeps = 0")
	}
	if st.Wakeups == 0 {
		t.Error("blocktime=0: expected wakeups, Stats().Wakeups = 0")
	}
}

func TestWaitPolicyTurnaroundNeverSleeps(t *testing.T) {
	o := optsN(3)
	o.Library = LibTurnaround
	o.BlocktimeMS = 0 // turnaround must override this to infinite
	rt := testRuntime(t, o)
	for i := 0; i < 5; i++ {
		rt.Parallel(func(*Thread) {})
	}
	if st := rt.Stats(); st.Sleeps != 0 || st.Wakeups != 0 {
		t.Errorf("turnaround: Sleeps=%d Wakeups=%d, want 0 0", st.Sleeps, st.Wakeups)
	}
}

func TestWaitPolicyInfiniteBlocktimeNeverSleeps(t *testing.T) {
	o := optsN(2)
	o.BlocktimeMS = BlocktimeInfinite
	rt := testRuntime(t, o)
	for i := 0; i < 3; i++ {
		rt.Parallel(func(*Thread) {})
	}
	if st := rt.Stats(); st.Sleeps != 0 {
		t.Errorf("infinite blocktime: Sleeps=%d, want 0", st.Sleeps)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	const n = 1000
	hits := make([]int32, n)
	rt.ParallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times, want 1", i, h)
		}
	}
}

func TestParallelReduceSum(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	got := rt.ParallelReduceSum(100, func(i int) float64 { return float64(i) })
	if got != 4950 {
		t.Errorf("sum 0..99 = %v, want 4950", got)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	bad := []Options{
		{NumThreads: 0, AlignAlloc: 64},
		{NumThreads: 2, AlignAlloc: 48},
		{NumThreads: 2, AlignAlloc: 4},
		{NumThreads: 2, AlignAlloc: 64, BlocktimeMS: -2},
		{NumThreads: 2, AlignAlloc: 64, ChunkSize: -1},
	}
	for _, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("New(%+v): want error, got nil", o)
		}
	}
}

func TestStringMentionsKeySettings(t *testing.T) {
	o := optsN(2)
	o.Library = LibTurnaround
	rt := testRuntime(t, o)
	s := rt.String()
	for _, want := range []string{"threads=2", "turnaround"} {
		if !containsStr(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
