package openmp

// ScanSum computes the team-wide exclusive prefix sum of each thread's
// local contribution: thread t receives the sum of the locals of threads
// 0..t-1 (0 for thread 0). This is the building block OpenMP 5's scan
// clause reduces to at team scope, and what worksharing implementations use
// to give each thread its output offset (e.g. parallel pack/filter).
//
// Like the reductions, ScanSum is a collective: every team thread must
// call it. The implementation is the classic two-phase tree (up-sweep into
// padded slots, serial combine by thread 0, barrier) which costs O(log n)
// barriers like the tree reduction.
func (th *Thread) ScanSum(local float64) float64 {
	n := th.team.n
	if n == 1 {
		th.nextSeq()
		return 0
	}
	seq := th.nextSeq()
	align := th.team.rt.opts.AlignAlloc
	st, h := th.team.instance(seq, func() any {
		stride := padStride(align)
		return &treeCell{slots: AlignedFloat64s((n+1)*stride, align), stride: stride}
	})
	cell := st.(*treeCell)
	cell.slots[th.id*cell.stride] = local
	th.Barrier()
	// Thread 0 turns the slot array into exclusive prefix sums; n is team
	// size, so this serial pass is O(n) with n <= a few hundred.
	if th.id == 0 {
		run := 0.0
		for t := 0; t < n; t++ {
			v := cell.slots[t*cell.stride]
			cell.slots[t*cell.stride] = run
			run += v
		}
		cell.slots[n*cell.stride] = run // total, available to all
	}
	th.Barrier()
	out := cell.slots[th.id*cell.stride]
	th.Barrier()
	th.team.release(h, seq)
	return out
}

// Pack concurrently copies the elements of [0, n) for which keep returns
// true into dst, preserving index order, and returns the number of kept
// elements. It demonstrates ScanSum: each thread filters its static block,
// scans for its output offset, then writes its block. dst must have room
// for n values. Every team thread must call Pack.
func Pack(th *Thread, n int, keep func(i int) bool, get func(i int) float64, dst []float64) int {
	t, nt := th.ID(), th.NumThreads()
	lo, hi := t*n/nt, (t+1)*n/nt
	var mine []float64
	for i := lo; i < hi; i++ {
		if keep(i) {
			mine = append(mine, get(i))
		}
	}
	offset := int(th.ScanSum(float64(len(mine))))
	copy(dst[offset:], mine)
	// Total kept = this thread's offset plus its own run only for the last
	// thread; make the total available to all via a max reduction.
	total := th.ReduceMax(float64(offset + len(mine)))
	th.Barrier()
	return int(total)
}
