package openmp

import (
	"testing"
	"testing/quick"
)

func TestScanSumExclusivePrefix(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		rt := testRuntime(t, optsN(n))
		got := make([]float64, n)
		rt.Parallel(func(th *Thread) {
			// Thread t contributes t+1; exclusive prefix = t(t+1)/2.
			got[th.ID()] = th.ScanSum(float64(th.ID() + 1))
		})
		for tid := 0; tid < n; tid++ {
			want := float64(tid*(tid+1)) / 2
			if got[tid] != want {
				t.Errorf("n=%d: thread %d scan = %v, want %v", n, tid, got[tid], want)
			}
		}
	}
}

func TestScanSumRepeated(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	rt.Parallel(func(th *Thread) {
		for round := 0; round < 10; round++ {
			got := th.ScanSum(1)
			if got != float64(th.ID()) {
				t.Errorf("round %d thread %d: scan = %v, want %v", round, th.ID(), got, float64(th.ID()))
			}
		}
	})
}

func TestScanSumProperty(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	f := func(vals [4]int8) bool {
		var out [4]float64
		rt.Parallel(func(th *Thread) {
			out[th.ID()] = th.ScanSum(float64(vals[th.ID()]))
		})
		run := 0.0
		for tid := 0; tid < 4; tid++ {
			if out[tid] != run {
				return false
			}
			run += float64(vals[tid])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPackKeepsOrderAndCount(t *testing.T) {
	for _, nt := range []int{1, 2, 4} {
		rt := testRuntime(t, optsN(nt))
		const n = 1000
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i)
		}
		dst := make([]float64, n)
		var total int
		rt.Parallel(func(th *Thread) {
			k := Pack(th, n,
				func(i int) bool { return i%3 == 0 },
				func(i int) float64 { return src[i] }, dst)
			th.Master(func() { total = k })
		})
		want := (n + 2) / 3
		if total != want {
			t.Fatalf("nt=%d: Pack kept %d, want %d", nt, total, want)
		}
		for k := 0; k < total; k++ {
			if dst[k] != float64(3*k) {
				t.Fatalf("nt=%d: dst[%d] = %v, want %v", nt, k, dst[k], float64(3*k))
			}
		}
	}
}

func TestPackNothingAndEverything(t *testing.T) {
	rt := testRuntime(t, optsN(3))
	dst := make([]float64, 50)
	rt.Parallel(func(th *Thread) {
		none := Pack(th, 50, func(int) bool { return false }, func(i int) float64 { return 1 }, dst)
		if none != 0 {
			t.Errorf("Pack(none) = %d", none)
		}
		all := Pack(th, 50, func(int) bool { return true }, func(i int) float64 { return float64(i) }, dst)
		if all != 50 {
			t.Errorf("Pack(all) = %d", all)
		}
	})
	for i, v := range dst {
		if v != float64(i) {
			t.Fatalf("dst[%d] = %v", i, v)
		}
	}
}
