package openmp

// Randomized stress testing: generate small random programs over the
// runtime's constructs and check them against sequential semantics. Every
// construct keeps a commutative account (atomic adds), so the expected
// totals are schedule- and interleaving-independent.

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// stressProgram is a deterministic random program over the construct set.
type stressProgram struct {
	ops []stressOp
}

type stressOp struct {
	kind  int // 0=For 1=ForNowait+Barrier 2=Single 3=Tasks 4=Reduce 5=Sections 6=Critical 7=TaskLoop
	size  int
	extra int
}

func buildProgram(seed uint64, maxOps int) stressProgram {
	var p stressProgram
	state := seed*2862933555777941757 + 3037000493
	n := int(state%uint64(maxOps)) + 1
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		p.ops = append(p.ops, stressOp{
			kind:  int((state >> 33) % 8),
			size:  int((state>>13)%97) + 1,
			extra: int((state >> 3) % 7),
		})
	}
	return p
}

// expected returns the total the program should add to the account.
func (p stressProgram) expected(teamSize int) int64 {
	var total int64
	for _, op := range p.ops {
		switch op.kind {
		case 0, 1: // loops: one increment per iteration
			total += int64(op.size)
		case 2: // single: exactly one
			total++
		case 3: // tasks: one per task
			total += int64(op.size % 20)
		case 4: // reduction: team sum of thread ids = n(n-1)/2, checked live
			total += int64(teamSize * (teamSize - 1) / 2)
		case 5: // sections: one per section
			total += int64(op.extra)
		case 6: // critical: one per thread
			total += int64(teamSize)
		case 7: // taskloop
			total += int64(op.size)
		}
	}
	return total
}

func (p stressProgram) run(rt *Runtime, account *atomic.Int64, t *testing.T) {
	teamSize := rt.NumThreads()
	rt.Parallel(func(th *Thread) {
		for _, op := range p.ops {
			switch op.kind {
			case 0:
				th.For(op.size, func(i int) { account.Add(1) })
			case 1:
				th.ForNowait(op.size, func(i int) { account.Add(1) })
				th.Barrier()
			case 2:
				th.Single(func() { account.Add(1) })
			case 3:
				if th.ID() == op.extra%teamSize {
					for k := 0; k < op.size%20; k++ {
						th.Task(func(*Thread) { account.Add(1) })
					}
					th.TaskWait()
				}
				th.Barrier()
			case 4:
				got := th.ReduceSum(float64(th.ID()))
				want := float64(teamSize*(teamSize-1)) / 2
				if got != want {
					t.Errorf("stress reduction = %v, want %v", got, want)
				}
				th.Master(func() { account.Add(int64(want)) })
				th.Barrier()
			case 5:
				fns := make([]func(), op.extra)
				for k := range fns {
					fns[k] = func() { account.Add(1) }
				}
				th.Sections(fns...)
			case 6:
				th.Critical("stress", func() { account.Add(1) })
				th.Barrier()
			case 7:
				th.Single(func() {
					th.TaskLoop(op.size, op.extra+1, func(i int) { account.Add(1) })
				})
				th.Barrier()
			}
		}
	})
}

func TestStressRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	configs := []func(*Options){
		nil,
		func(o *Options) { o.Schedule = ScheduleDynamic },
		func(o *Options) { o.Schedule = ScheduleGuided; o.Library = LibTurnaround },
		func(o *Options) { o.NumThreads = 2; o.Reduction = ReductionAtomic },
		func(o *Options) { o.NumThreads = 5; o.Reduction = ReductionCritical; o.ChunkSize = 3 },
	}
	f := func(seed uint16, cfgIdx uint8) bool {
		mutate := configs[int(cfgIdx)%len(configs)]
		o := DefaultOptions()
		o.NumThreads = 3
		o.BlocktimeMS = 0
		if mutate != nil {
			mutate(&o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer rt.Close()
		p := buildProgram(uint64(seed)+1, 12)
		var account atomic.Int64
		p.run(rt, &account, t)
		want := p.expected(rt.NumThreads())
		if got := account.Load(); got != want {
			t.Logf("seed %d cfg %d: account = %d, want %d", seed, cfgIdx, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
