package openmp

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Lock is an OpenMP-style simple lock (omp_init_lock / omp_set_lock /
// omp_unset_lock). Acquisition follows the runtime's wait policy: the
// caller spins for the configured blocktime and then parks, exactly like a
// worker waiting for a region. The zero value is unlocked but not attached
// to a runtime; use Runtime.NewLock to get wait-policy-aware behaviour.
type Lock struct {
	state   atomic.Int32
	waiters atomic.Int32  // goroutines at or past the park decision
	parked  chan struct{} // buffered wake token channel
	stats   *statShard    // sleep/wakeup accounting; nil for zero-value locks
	// spinForever mirrors KMP_LIBRARY=turnaround / KMP_BLOCKTIME=infinite.
	spinForever bool
	blocktime   time.Duration
}

// NewLock returns a lock honouring the runtime's wait policy.
func (rt *Runtime) NewLock() *Lock {
	bt := rt.opts.effectiveBlocktimeMS()
	l := &Lock{parked: make(chan struct{}, 1), stats: rt.stats.misc()}
	if bt == BlocktimeInfinite {
		l.spinForever = true
	} else {
		l.blocktime = time.Duration(bt) * time.Millisecond
	}
	return l
}

// Lock acquires the lock, spinning within the blocktime budget and then
// sleeping until a release wakes it.
func (l *Lock) Lock() {
	if l.state.CompareAndSwap(0, 1) {
		return
	}
	var deadline time.Time
	if !l.spinForever {
		deadline = time.Now().Add(l.blocktime)
	}
	for spins := 0; ; spins++ {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		if !l.spinForever && spins&63 == 63 && time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	// Parked path: the blocktime budget is exhausted, so block on the wake
	// channel until a release hands us a token — the same sleep/wake cycle
	// workers use between regions (KMP_LIBRARY=throughput semantics).
	if l.parked == nil {
		// Zero-value lock: degrade to a pure spin.
		for !l.state.CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
		return
	}
	// Register before the acquisition attempt: Unlock reads waiters after
	// clearing state, so either our CAS sees the cleared state or Unlock
	// sees our registration and posts a token — never neither.
	l.waiters.Add(1)
	for {
		if l.state.CompareAndSwap(0, 1) {
			l.waiters.Add(-1)
			return
		}
		if l.stats != nil {
			l.stats.sleeps.Add(1)
		}
		<-l.parked
		if l.stats != nil {
			l.stats.wakeups.Add(1)
		}
	}
}

// TryLock attempts the acquisition without waiting.
func (l *Lock) TryLock() bool { return l.state.CompareAndSwap(0, 1) }

// Unlock releases the lock and wakes one parked waiter if any.
func (l *Lock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("openmp: Unlock of unlocked Lock")
	}
	if l.parked != nil && l.waiters.Load() > 0 {
		// Non-blocking: a token already in the buffer serves the same
		// purpose, and waiters that acquired during the spin phase must not
		// leave Unlock stuck behind a full channel.
		select {
		case l.parked <- struct{}{}:
		default:
		}
	}
}

// NestLock is an OpenMP nestable lock (omp_init_nest_lock): the owning
// thread may re-acquire it, tracking a nesting depth. Ownership is per
// Thread, as in OpenMP, not per goroutine.
type NestLock struct {
	inner *Lock
	owner atomic.Int64 // thread id + 1; 0 = unowned
	depth int
}

// NewNestLock returns a nestable lock honouring the runtime's wait policy.
func (rt *Runtime) NewNestLock() *NestLock {
	return &NestLock{inner: rt.NewLock()}
}

// Lock acquires the nest lock for thread th, or deepens the nesting if th
// already owns it. It returns the resulting nesting depth.
func (nl *NestLock) Lock(th *Thread) int {
	id := int64(th.ID()) + 1
	if nl.owner.Load() == id {
		nl.depth++
		return nl.depth
	}
	nl.inner.Lock()
	nl.owner.Store(id)
	nl.depth = 1
	return 1
}

// Unlock releases one nesting level, fully releasing the lock at depth 0.
// It returns the remaining depth.
func (nl *NestLock) Unlock(th *Thread) int {
	id := int64(th.ID()) + 1
	if nl.owner.Load() != id {
		panic("openmp: NestLock.Unlock by non-owner thread")
	}
	nl.depth--
	if nl.depth == 0 {
		nl.owner.Store(0)
		nl.inner.Unlock()
		return 0
	}
	return nl.depth
}

// Sections executes each function on exactly one team thread, distributed
// first-come-first-served like an OpenMP sections construct, and barriers
// at the end. Every team thread must call Sections (it is a worksharing
// construct).
func (th *Thread) Sections(fns ...func()) {
	seq := th.nextSeq()
	if len(fns) == 0 {
		th.Barrier()
		return
	}
	st, h := th.team.instance(seq, func() any { return new(atomic.Int64) })
	cur := st.(*atomic.Int64)
	for {
		i := int(cur.Add(1)) - 1
		if i >= len(fns) {
			break
		}
		fns[i]()
	}
	th.Barrier()
	th.team.release(h, seq)
}
