package openmp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockMutualExclusion(t *testing.T) {
	for _, lib := range []LibraryMode{LibThroughput, LibTurnaround} {
		o := optsN(4)
		o.Library = lib
		rt := testRuntime(t, o)
		l := rt.NewLock()
		counter := 0
		rt.Parallel(func(th *Thread) {
			for i := 0; i < 300; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		})
		if counter != 1200 {
			t.Errorf("%s: counter = %d, want 1200", lib, counter)
		}
	}
}

func TestLockTryLock(t *testing.T) {
	rt := testRuntime(t, optsN(1))
	l := rt.NewLock()
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestLockUnlockOfUnlockedPanics(t *testing.T) {
	rt := testRuntime(t, optsN(1))
	l := rt.NewLock()
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked lock should panic")
		}
	}()
	l.Unlock()
}

func TestZeroValueLockStillExcludes(t *testing.T) {
	var l Lock
	rt := testRuntime(t, optsN(3))
	n := 0
	rt.Parallel(func(th *Thread) {
		for i := 0; i < 100; i++ {
			l.Lock()
			n++
			l.Unlock()
		}
	})
	if n != 300 {
		t.Errorf("n = %d, want 300", n)
	}
}

func TestLockParksAfterBlocktime(t *testing.T) {
	// optsN(1): no pooled workers, so every Sleep/Wakeup below is the lock's.
	o := optsN(1)
	o.Library = LibThroughput
	o.BlocktimeMS = 0
	rt := testRuntime(t, o)
	l := rt.NewLock()
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// Give the contender ample time to exhaust its (zero) blocktime and
	// park; a busy-spinning implementation would burn CPU here instead.
	time.Sleep(20 * time.Millisecond)
	if st := rt.Stats(); st.Sleeps == 0 {
		t.Error("contender past blocktime did not park: Stats().Sleeps = 0")
	}
	l.Unlock()
	<-done
	if st := rt.Stats(); st.Wakeups == 0 {
		t.Error("parked contender woke without accounting: Stats().Wakeups = 0")
	}
}

func TestLockTurnaroundNeverParks(t *testing.T) {
	o := optsN(4)
	o.Library = LibTurnaround
	rt := testRuntime(t, o)
	l := rt.NewLock()
	counter := 0
	rt.Parallel(func(th *Thread) {
		for i := 0; i < 200; i++ {
			l.Lock()
			counter++
			l.Unlock()
		}
	})
	if counter != 800 {
		t.Errorf("counter = %d, want 800", counter)
	}
	if st := rt.Stats(); st.Sleeps != 0 || st.Wakeups != 0 {
		t.Errorf("turnaround lock parked: Sleeps=%d Wakeups=%d, want 0 0", st.Sleeps, st.Wakeups)
	}
}

// TestLockParkWakeHammer drives many goroutines across the blocktime→park
// transition at once; run under -race it checks the waiter accounting and
// token hand-off for data races and lost wakeups.
func TestLockParkWakeHammer(t *testing.T) {
	o := optsN(1)
	o.Library = LibThroughput
	o.BlocktimeMS = 0
	rt := testRuntime(t, o)
	l := rt.NewLock()
	const goroutines, iters = 8, 150
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				if i%16 == 0 {
					// Hold the lock long enough that contenders blow their
					// zero blocktime and take the park path.
					time.Sleep(50 * time.Microsecond)
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Errorf("counter = %d, want %d (lost update — exclusion broken)", counter, goroutines*iters)
	}
	st := rt.Stats()
	if st.Sleeps == 0 {
		t.Error("hammer never parked: Stats().Sleeps = 0 (park path untested)")
	}
	if st.Wakeups == 0 {
		t.Error("parked waiters woke without accounting: Stats().Wakeups = 0")
	}
}

func TestNestLockReentrancy(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	nl := rt.NewNestLock()
	rt.Parallel(func(th *Thread) {
		if d := nl.Lock(th); d != 1 {
			t.Errorf("first Lock depth = %d, want 1", d)
		}
		if d := nl.Lock(th); d != 2 {
			t.Errorf("nested Lock depth = %d, want 2", d)
		}
		if d := nl.Unlock(th); d != 1 {
			t.Errorf("first Unlock depth = %d, want 1", d)
		}
		if d := nl.Unlock(th); d != 0 {
			t.Errorf("final Unlock depth = %d, want 0", d)
		}
	})
}

func TestNestLockCrossThreadExclusion(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	nl := rt.NewNestLock()
	counter := 0
	rt.Parallel(func(th *Thread) {
		for i := 0; i < 100; i++ {
			nl.Lock(th)
			nl.Lock(th) // nested
			counter++
			nl.Unlock(th)
			nl.Unlock(th)
		}
	})
	if counter != 400 {
		t.Errorf("counter = %d, want 400", counter)
	}
}

func TestSectionsEachRunsOnce(t *testing.T) {
	rt := testRuntime(t, optsN(3))
	var counts [5]atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Sections(
			func() { counts[0].Add(1) },
			func() { counts[1].Add(1) },
			func() { counts[2].Add(1) },
			func() { counts[3].Add(1) },
			func() { counts[4].Add(1) },
		)
		// Implicit barrier: all sections done when any thread proceeds.
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Errorf("after Sections, section %d ran %d times", i, counts[i].Load())
			}
		}
	})
}

func TestSectionsEmptyAndRepeated(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	var ran atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Sections()
		th.Sections(func() { ran.Add(1) })
		th.Sections(func() { ran.Add(1) }, func() { ran.Add(1) })
	})
	if got := ran.Load(); got != 3 {
		t.Errorf("ran = %d, want 3", got)
	}
}

func TestTaskGroupWaitsForDescendants(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	var done atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.TaskGroup(func(g *Thread) {
				for i := 0; i < 5; i++ {
					g.Task(func(child *Thread) {
						child.Task(func(*Thread) { done.Add(1) }) // grandchild
						done.Add(1)
					})
				}
			})
			// Unlike TaskWait, TaskGroup awaits grandchildren too.
			if got := done.Load(); got != 10 {
				t.Errorf("TaskGroup returned with %d/10 descendants done", got)
			}
		})
	})
}

func TestTaskGroupNested(t *testing.T) {
	rt := testRuntime(t, optsN(3))
	var inner, outer atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.TaskGroup(func(g *Thread) {
				g.Task(func(t1 *Thread) {
					t1.TaskGroup(func(g2 *Thread) {
						g2.Task(func(*Thread) { inner.Add(1) })
					})
					if inner.Load() != 1 {
						t.Error("inner TaskGroup returned early")
					}
					outer.Add(1)
				})
			})
		})
	})
	if outer.Load() != 1 || inner.Load() != 1 {
		t.Errorf("outer=%d inner=%d, want 1 1", outer.Load(), inner.Load())
	}
}

func TestTaskLoopCoversRange(t *testing.T) {
	rt := testRuntime(t, optsN(4))
	const n = 1000
	hits := make([]int32, n)
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.TaskLoop(n, 0, func(i int) { atomic.AddInt32(&hits[i], 1) })
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d ran %d times", i, h)
		}
	}
}

func TestTaskLoopExplicitGrainAndEdgeCases(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	var ran atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.TaskLoop(0, 4, func(i int) { ran.Add(1) })   // empty
			th.TaskLoop(3, 100, func(i int) { ran.Add(1) }) // more tasks than iters
			th.TaskLoop(10, 2, func(i int) { ran.Add(1) })  // explicit num_tasks
		})
	})
	if got := ran.Load(); got != 13 {
		t.Errorf("ran = %d, want 13", got)
	}
}

func TestFor2DCoversSpace(t *testing.T) {
	rt := testRuntime(t, optsN(3))
	const n, m = 20, 30
	var hits [n][m]int32
	rt.Parallel(func(th *Thread) {
		th.For2D(n, m, func(i, j int) { atomic.AddInt32(&hits[i][j], 1) })
	})
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if hits[i][j] != 1 {
				t.Fatalf("(%d,%d) ran %d times", i, j, hits[i][j])
			}
		}
	}
}
