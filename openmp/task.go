package openmp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omptune/openmp/trace"
)

// task is one explicit task. children counts direct child tasks that have
// not yet completed, which is what TaskWait blocks on.
type task struct {
	fn       func(*Thread)
	parent   *task
	children atomic.Int64
	// group is the innermost enclosing taskgroup at spawn time, inherited
	// by descendants so TaskGroup can await the whole subtree.
	group *taskGroup
}

// taskPool is the team's work-stealing task scheduler: one deque per
// thread, LIFO for the owner (depth-first, cache-friendly) and FIFO for
// thieves (steals the oldest, largest-granularity work).
type taskPool struct {
	deques  []taskDeque
	pending atomic.Int64
}

func newTaskPool(n int) *taskPool {
	return &taskPool{deques: make([]taskDeque, n)}
}

type taskDeque struct {
	mu    sync.Mutex
	items []*task
}

func (d *taskDeque) push(t *task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBack removes the newest task (owner side).
func (d *taskDeque) popBack() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t
}

// popFront removes the oldest task (thief side).
func (d *taskDeque) popFront() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return t
}

// Task spawns an explicit task executing fn. The task becomes a child of
// the thread's current task (the implicit region task at the top level), is
// queued on the spawning thread's deque, and may be executed by any team
// thread. Tasks run when threads are idle: inside TaskWait, at explicit
// barriers is not implied — draining happens in TaskWait and at the
// implicit end-of-region barrier.
func (th *Thread) Task(fn func(*Thread)) {
	t := &task{fn: fn, parent: th.curTask, group: th.curGroup}
	th.curTask.children.Add(1)
	if t.group != nil {
		t.group.pending.Add(1)
	}
	th.team.pool.pending.Add(1)
	th.team.pool.deques[th.id].push(t)
	if tr := th.team.rt.tracer.Load(); tr != nil {
		tr.Emit(th.id, trace.KindTaskCreate, th.team.rt.regionGen.Load(), 0)
	}
	// Task creation is a task scheduling point (OpenMP spec §task scheduling):
	// periodically yield the processor so idle team threads get a chance to
	// steal from this deque. Without it, a goroutine that spawns and then
	// drains a deep task tree never yields while work remains, starving
	// thieves whenever GOMAXPROCS is smaller than the team — tasking then
	// degenerates to serial execution on oversubscribed hosts.
	th.spawns++
	if th.spawns&31 == 0 {
		runtime.Gosched()
	}
}

// TaskWait blocks until all child tasks of the current task have completed,
// executing queued tasks (its own or stolen) while it waits.
func (th *Thread) TaskWait() {
	for th.curTask.children.Load() > 0 {
		if !th.runOneTask() {
			runtime.Gosched()
		}
	}
}

// drainTasks participates in task execution until the team has no pending
// tasks; called before the implicit end-of-region barrier.
func (th *Thread) drainTasks() {
	for th.team.pool.pending.Load() > 0 {
		if !th.runOneTask() {
			runtime.Gosched()
		}
	}
}

// runOneTask executes one queued task if any is available: first the
// thread's own newest task, then a task stolen from another thread's deque
// (round-robin starting position so thieves don't all hammer deque 0).
func (th *Thread) runOneTask() bool {
	pool := th.team.pool
	tr := th.team.rt.tracer.Load()
	var gen uint64
	if tr != nil {
		gen = th.team.rt.regionGen.Load()
	}
	t := pool.deques[th.id].popBack()
	if t == nil {
		// Scan every other deque, starting from the last successful victim
		// (stealAt) and wrapping across all n slots with self skipped. The
		// previous formulation offset the scan by th.id+stealAt and skipped
		// self mid-window, which left one victim permanently untried for
		// some stealAt values — after a few steals rotated stealAt, a
		// thread could go blind to a loaded deque and never steal again.
		n := th.team.n
		for k := 0; k < n; k++ {
			victim := (th.stealAt + k) % n
			if victim == th.id {
				continue
			}
			if t = pool.deques[victim].popFront(); t != nil {
				th.stealAt = victim // keep stealing from a productive victim
				th.stats.tasksStolen.Add(1)
				if tr != nil {
					tr.Emit(th.id, trace.KindTaskSteal, gen, int64(victim))
				}
				break
			}
		}
	}
	if t == nil {
		return false
	}
	prevTask, prevGroup := th.curTask, th.curGroup
	th.curTask, th.curGroup = t, t.group
	if tr != nil {
		tr.Emit(th.id, trace.KindTaskBegin, gen, 0)
	}
	if m := th.team.rt.metrics.Load(); m != nil && m.TaskRun != nil {
		start := time.Now()
		t.fn(th)
		m.TaskRun.Observe(time.Since(start))
	} else {
		t.fn(th)
	}
	if tr != nil {
		tr.Emit(th.id, trace.KindTaskEnd, gen, 0)
	}
	th.curTask, th.curGroup = prevTask, prevGroup
	t.parent.children.Add(-1)
	if t.group != nil {
		t.group.pending.Add(-1)
	}
	pool.pending.Add(-1)
	th.stats.tasksRun.Add(1)
	return true
}
