package openmp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omptune/openmp/profile"
	"omptune/openmp/trace"
)

// task is one explicit task. children counts direct child tasks that have
// not yet completed, which is what TaskWait blocks on.
type task struct {
	fn       func(*Thread)
	parent   *task
	children atomic.Int64
	// group is the innermost enclosing taskgroup at spawn time, inherited
	// by descendants so TaskGroup can await the whole subtree.
	group *taskGroup
}

// taskPool is the team's work-stealing task scheduler: one Chase–Lev deque
// per thread, LIFO for the owner (depth-first, cache-friendly) and FIFO for
// thieves (steals the oldest, largest-granularity work, in half-batches).
// Idle threads waiting for task activity follow the same KMP_BLOCKTIME
// spin-then-park discipline as the team barrier: spin within the budget,
// then park on the pool's broadcast until a task is pushed or completes.
type taskPool struct {
	deques  []taskDeque
	pending atomic.Int64

	spinForever bool
	blocktime   time.Duration

	mu   sync.Mutex
	cond sync.Cond
	// waiters counts threads parked (or about to park) in cond.Wait. It is
	// written only under mu but read with an atomic load on the push and
	// completion paths, so producers skip the lock entirely while nobody
	// waits.
	waiters atomic.Int32
}

func newTaskPool(n, blocktimeMS int) *taskPool {
	p := &taskPool{deques: make([]taskDeque, n)}
	for i := range p.deques {
		p.deques[i].init(initialDequeCap)
	}
	if blocktimeMS == BlocktimeInfinite {
		p.spinForever = true
	} else {
		p.blocktime = time.Duration(blocktimeMS) * time.Millisecond
	}
	p.cond.L = &p.mu
	return p
}

// wakeWaiters wakes every thread parked for task activity. Called after a
// task is pushed (new work to steal) and after a task completes (a TaskWait
// or drain condition may now hold). The fast path is one atomic load: while
// nobody is parked, producers never touch the lock.
//
// Pairing argument (no lost wakeups): a parker increments waiters under mu
// and then re-checks its exit condition and every deque before blocking.
// Both sides use sequentially consistent atomics, so either the parker's
// re-check observes the producer's push/completion (and does not block), or
// the producer's waiters load observes the parker (and broadcasts — under
// mu, so the broadcast cannot slip between the parker's re-check and its
// Wait).
func (p *taskPool) wakeWaiters() {
	if p.waiters.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// anyQueued reports whether any deque currently holds a stealable task.
// Cold-path only (the park re-check); a transiently negative size during an
// owner's popBack reads as empty, which is correct — that element is taken.
func (p *taskPool) anyQueued() bool {
	for i := range p.deques {
		d := &p.deques[i]
		if d.bottom.Load()-d.top.Load() > 0 {
			return true
		}
	}
	return false
}

// initialDequeCap is the starting ring capacity of each per-thread deque,
// allocated once at team construction so the owner path never allocates in
// steady state. A deque holding more than this many outstanding tasks grows
// by doubling (amortized O(1), and the old ring is simply garbage).
const initialDequeCap = 64

// maxStealBatch bounds how many tasks one steal visit may transfer,
// keeping a thief's time-to-first-execution bounded on very deep deques.
const maxStealBatch = 32

// dequeRing is one power-of-two circular array of a Chase–Lev deque. Logical
// index i lives in slots[i&mask]; the indexes themselves (bottom, top) grow
// without bound. Slots are atomic because a thief's read of slot top races
// the owner's store of a new task into the same physical slot one
// revolution later — the thief's subsequent CAS on top fails in exactly the
// interleavings where that race occurs, so the stale value is discarded.
type dequeRing struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slots: make([]atomic.Pointer[task], capacity)}
}

func (r *dequeRing) get(i int64) *task    { return r.slots[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *task) { r.slots[i&r.mask].Store(t) }

// taskDeque is a Chase–Lev work-stealing deque (Chase & Lev, SPAA'05, in
// the formulation of Lê et al., PPoPP'13): a growable circular array with
// two indexes. The owner pushes and pops at bottom; thieves claim at top
// with a CAS. The owner path is lock-free and allocation-free: push is two
// loads and two stores, popBack needs a CAS only when racing a thief for
// the last element. Replaces the previous mutex-guarded slice deque, whose
// popFront front-sliced the backing array and churned memory in steady
// producer/consumer phases — the ring reuses its slots by construction.
//
// The hot words live on separate cache lines: bottom is written by the
// owner on every push/pop, top by thieves on every steal, and the ring
// pointer only changes on growth.
type taskDeque struct {
	_      [cacheLineSize]byte
	bottom atomic.Int64
	_      [cacheLineSize - 8]byte
	top    atomic.Int64
	_      [cacheLineSize - 8]byte
	ring   atomic.Pointer[dequeRing]
	_      [cacheLineSize - 8]byte
}

func (d *taskDeque) init(capacity int64) {
	d.ring.Store(newDequeRing(capacity))
}

// push appends t at the bottom (owner side). Owner-only.
func (d *taskDeque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.ring.Load()
	if b-tp >= int64(len(r.slots)) {
		r = d.grow(r, b, tp)
	}
	r.put(b, t)
	// The seq-cst store publishes the slot write to thieves.
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live range. Thieves still holding the
// old ring read the same values at the same logical indexes (growth never
// moves or removes elements below bottom), so a stale read stays valid for
// exactly as long as its claiming CAS can still succeed.
func (d *taskDeque) grow(r *dequeRing, b, tp int64) *dequeRing {
	nr := newDequeRing(int64(len(r.slots)) * 2)
	for i := tp; i < b; i++ {
		nr.put(i, r.get(i))
	}
	d.ring.Store(nr)
	return nr
}

// popBack removes the newest task (owner side). Owner-only. The only
// synchronization on the fast path is the bottom store/top load pair; a CAS
// on top is needed only when the popped element is the last one, where a
// concurrent thief may be claiming it.
func (d *taskDeque) popBack() *task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b) // reserve index b; thieves now see size <= b-top
	t := d.top.Load()
	if t > b {
		// Empty (or a thief claimed the last element first): undo.
		d.bottom.Store(b + 1)
		return nil
	}
	x := r.get(b)
	if t == b {
		// Last element: race thieves for it with one CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			x = nil
		}
		d.bottom.Store(b + 1)
	}
	if x != nil {
		// Release the claimed slot to the GC. Safe only for the owner: once
		// index b is claimed here, no thief can observe a positive size that
		// includes it (see the steal ordering below), and the owner's own
		// future pushes to this physical slot are program-ordered after this
		// store. Thieves must NOT clear claimed slots — after a successful
		// steal the owner may immediately reuse the physical slot for a new
		// push, which a late thief-side clear would destroy.
		r.put(b, nil)
	}
	return x
}

// stealOne claims the oldest task (thief side) with one CAS on top. A nil
// result means the caller should give up on this victim for now: the deque
// was empty, or another claimant (thief or owner-on-last-element) won the
// CAS race.
//
// The load order is what makes the unsynchronized slot read sound: top is
// read before bottom (both seq-cst), so if a positive size is observed, the
// owner cannot have reserved index top without this thief's CAS failing —
// the owner's bottom store precedes its top load, which would force a later
// thief bottom read to see the reservation.
func (d *taskDeque) stealOne() *task {
	t := d.top.Load()
	b := d.bottom.Load()
	if b-t <= 0 {
		return nil
	}
	x := d.ring.Load().get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return x
}

// stealBatch transfers up to half of the victim's observed work to the
// thief in one visit: the first claimed task is returned for immediate
// execution and the rest are pushed onto own (the thief's deque, whose
// owner the caller must be). Taking half per visit empties a loaded victim
// in O(log size) visits instead of one task per scan, and the transferred
// tasks become stealable from the thief in turn, diffusing load through
// the team.
//
// Each task in the batch is claimed by its own CAS on top. A single CAS
// claiming a [top, top+k) range would be unsound against the owner's
// protocol: the owner takes index bottom-1 without any CAS whenever its top
// read says more than one element remains, so a range claim computed from a
// stale bottom could overlap elements the owner is already running. The
// per-element CAS chain keeps the standard Chase–Lev ownership proof intact
// while still amortizing victim selection over the whole batch.
func (d *taskDeque) stealBatch(own *taskDeque) (first *task, n int) {
	t := d.top.Load()
	b := d.bottom.Load()
	size := b - t
	if size <= 0 {
		return nil, 0
	}
	want := (size + 1) / 2
	if want > maxStealBatch {
		want = maxStealBatch
	}
	for int64(n) < want {
		x := d.stealOne()
		if x == nil {
			break
		}
		if first == nil {
			first = x
		} else {
			own.push(x)
		}
		n++
	}
	return first, n
}

// Task spawns an explicit task executing fn. The task becomes a child of
// the thread's current task (the implicit region task at the top level), is
// queued on the spawning thread's deque, and may be executed by any team
// thread. Tasks run when threads are idle: inside TaskWait, at explicit
// barriers is not implied — draining happens in TaskWait and at the
// implicit end-of-region barrier.
func (th *Thread) Task(fn func(*Thread)) {
	t := &task{fn: fn, parent: th.curTask, group: th.curGroup}
	th.curTask.children.Add(1)
	if t.group != nil {
		t.group.pending.Add(1)
	}
	pool := th.team.pool
	pool.pending.Add(1)
	pool.deques[th.id].push(t)
	pool.wakeWaiters()
	if tr := th.team.rt.tracer.Load(); tr != nil {
		tr.Emit(int(th.gtid), th.team.level, trace.KindTaskCreate, th.team.regionID, 0)
	}
	if p := th.team.rt.profiler.Load(); p != nil {
		p.TaskCreated(int(th.gtid), th.team.level)
	}
	// Task creation is a task scheduling point (OpenMP spec §task scheduling):
	// periodically yield the processor so idle team threads get a chance to
	// steal from this deque. Without it, a goroutine that spawns and then
	// drains a deep task tree never yields while work remains, starving
	// thieves whenever GOMAXPROCS is smaller than the team — tasking then
	// degenerates to serial execution on oversubscribed hosts.
	th.spawns++
	if th.spawns&31 == 0 {
		runtime.Gosched()
	}
}

// TaskWait blocks until all child tasks of the current task have completed,
// executing queued tasks (its own or stolen) while it waits.
func (th *Thread) TaskWait() {
	th.taskWaitLoop(func() bool { return th.curTask.children.Load() <= 0 })
}

// drainTasks participates in task execution until the team has no pending
// tasks; called before the implicit end-of-region barrier.
func (th *Thread) drainTasks() {
	th.taskWaitLoop(func() bool { return th.team.pool.pending.Load() <= 0 })
}

// taskWaitLoop executes queued tasks until done holds, applying the
// KMP_BLOCKTIME wait-policy discipline to idle gaps exactly like the team
// barrier: after a failed scan the thread spins (yielding) within the
// blocktime budget, then parks on the pool's broadcast until a task is
// pushed or completes. Turnaround mode and KMP_BLOCKTIME=infinite spin
// forever; a zero blocktime parks after the first failed scan. Parks and
// wakes are charged to the thread's stats shard, so Stats.Sleeps/Wakeups
// reflect task waits exactly like barrier and between-region waits.
func (th *Thread) taskWaitLoop(done func() bool) {
	pool := th.team.pool
	var deadline time.Time
	spinning := false
	for !done() {
		if th.runOneTask() {
			spinning = false
			continue
		}
		if pool.spinForever {
			runtime.Gosched()
			continue
		}
		if pool.blocktime > 0 {
			if !spinning {
				spinning = true
				deadline = time.Now().Add(pool.blocktime)
			}
			if time.Now().Before(deadline) {
				runtime.Gosched()
				continue
			}
		}
		th.parkForTasks(done)
		spinning = false
	}
}

// parkForTasks blocks the thread until task activity (a push or a
// completion) is broadcast. The re-check after advertising the park is what
// prevents lost wakeups — see taskPool.wakeWaiters.
func (th *Thread) parkForTasks(done func() bool) {
	pool := th.team.pool
	pool.mu.Lock()
	pool.waiters.Add(1)
	if done() || pool.anyQueued() {
		pool.waiters.Add(-1)
		pool.mu.Unlock()
		return
	}
	tr := th.team.rt.tracer.Load()
	var gen uint64
	if tr != nil {
		gen = th.team.regionID
		tr.Emit(int(th.gtid), th.team.level, trace.KindPark, gen, 0)
	}
	// Task-wait parks complete strictly inside the region (the parked
	// thread still has to arrive at the end-of-region barrier), so they are
	// safe to charge to the region's profile — unlike end-of-region barrier
	// parks, which may outlive the fold.
	pr := th.team.rt.profiler.Load()
	if pr != nil {
		pr.Park(int(th.gtid), th.team.level)
	}
	th.stats.sleeps.Add(1)
	pool.cond.Wait()
	th.stats.wakeups.Add(1)
	if pr != nil {
		pr.Wake(int(th.gtid), th.team.level)
	}
	if tr != nil {
		tr.Emit(int(th.gtid), th.team.level, trace.KindWake, gen, 0)
	}
	pool.waiters.Add(-1)
	pool.mu.Unlock()
}

// runOneTask executes one queued task if any is available: first the
// thread's own newest task, then a batch stolen from another thread's
// deque (near victims first when the team has a place-distance model).
func (th *Thread) runOneTask() bool {
	pool := th.team.pool
	t := pool.deques[th.id].popBack()
	if t == nil {
		t = th.stealTask()
	}
	if t == nil {
		return false
	}
	tr := th.team.rt.tracer.Load()
	var gen uint64
	if tr != nil {
		gen = th.team.regionID
	}
	prevTask, prevGroup := th.curTask, th.curGroup
	th.curTask, th.curGroup = t, t.group
	if tr != nil {
		tr.Emit(int(th.gtid), th.team.level, trace.KindTaskBegin, gen, 0)
	}
	if m := th.team.rt.metrics.Load(); m != nil && m.TaskRun != nil {
		start := time.Now()
		t.fn(th)
		m.TaskRun.Observe(time.Since(start))
	} else {
		t.fn(th)
	}
	if tr != nil {
		tr.Emit(int(th.gtid), th.team.level, trace.KindTaskEnd, gen, 0)
	}
	th.curTask, th.curGroup = prevTask, prevGroup
	t.parent.children.Add(-1)
	if t.group != nil {
		t.group.pending.Add(-1)
	}
	pool.pending.Add(-1)
	th.stats.tasksRun.Add(1)
	if p := th.team.rt.profiler.Load(); p != nil {
		p.TaskRan(int(th.gtid), th.team.level)
	}
	pool.wakeWaiters()
	return true
}

// stealTask scans the other deques for work and transfers a half-batch from
// the first loaded victim (see taskDeque.stealBatch). With a place-distance
// model (placement set and Options.PlaceDistances provided), victims are
// tried in NUMA-distance order from the thief's bound place — after first
// revisiting the last productive victim, which likely still holds work.
// Without one, the scan falls back to the rotating uniform walk: all n
// slots from the last successful victim, self skipped.
func (th *Thread) stealTask() *task {
	tm := th.team
	n := tm.n
	if tm.stealOrder == nil {
		for k := 0; k < n; k++ {
			victim := (th.stealAt + k) % n
			if victim == th.id {
				continue
			}
			if t := th.stealFrom(victim); t != nil {
				th.stealAt = victim // keep stealing from a productive victim
				return t
			}
		}
		return nil
	}
	last := th.stealAt
	if last != th.id {
		if t := th.stealFrom(last); t != nil {
			return t
		}
	}
	for _, v := range tm.stealOrder[th.id] {
		victim := int(v)
		if victim == last {
			continue // already tried above
		}
		if t := th.stealFrom(victim); t != nil {
			th.stealAt = victim
			return t
		}
	}
	return nil
}

// stealFrom attempts one half-batch steal from victim, accounting the
// transferred tasks in the thread's stats shard (total, batch count and
// NUMA locality class) and emitting one KindTaskSteal event per batch with
// victim, batch size and locality packed into Arg.
func (th *Thread) stealFrom(victim int) *task {
	tm := th.team
	pool := tm.pool
	first, n := pool.deques[victim].stealBatch(&pool.deques[th.id])
	if first == nil {
		return nil
	}
	th.stats.tasksStolen.Add(uint64(n))
	th.stats.stealBatches.Add(1)
	loc := trace.StealLocalityUnknown
	ploc := profile.StealUnknown
	if tm.stealLocal != nil {
		if tm.stealLocal[th.id][victim] {
			loc = trace.StealLocalityLocal
			ploc = profile.StealLocal
			th.stats.stealsLocal.Add(uint64(n))
		} else {
			loc = trace.StealLocalityRemote
			ploc = profile.StealRemote
			th.stats.stealsRemote.Add(uint64(n))
		}
	}
	if p := tm.rt.profiler.Load(); p != nil {
		p.TaskStolen(int(th.gtid), tm.level, n, ploc)
	}
	if n > 1 {
		// The surplus landed on this thread's deque: other idle threads can
		// steal it in turn.
		pool.wakeWaiters()
	}
	if tr := tm.rt.tracer.Load(); tr != nil {
		tr.Emit(int(th.gtid), tm.level, trace.KindTaskSteal, tm.regionID, trace.StealArg(victim, n, loc))
	}
	return first
}
