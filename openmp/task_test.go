package openmp

import (
	"sync/atomic"
	"testing"
)

func taskOpts(n int) Options {
	o := DefaultOptions()
	o.NumThreads = n
	o.BlocktimeMS = 0
	return o
}

func TestTasksAllExecuteBeforeRegionEnds(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	var ran atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			for i := 0; i < 100; i++ {
				th.Task(func(*Thread) { ran.Add(1) })
			}
		})
	})
	if got := ran.Load(); got != 100 {
		t.Errorf("ran = %d tasks, want 100", got)
	}
	if got := rt.Stats().TasksRun; got != 100 {
		t.Errorf("Stats().TasksRun = %d, want 100", got)
	}
}

func TestTaskWaitBlocksOnChildren(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	var before, after atomic.Int32
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			for i := 0; i < 20; i++ {
				th.Task(func(*Thread) { before.Add(1) })
			}
			th.TaskWait()
			if got := before.Load(); got != 20 {
				t.Errorf("TaskWait returned with %d/20 children done", got)
			}
			after.Add(1)
		})
	})
	if after.Load() != 1 {
		t.Error("single body did not complete")
	}
}

func TestTaskWaitOnlyWaitsDirectChildren(t *testing.T) {
	// A child task spawns a grandchild; TaskWait on the parent must not
	// require the grandchild to have finished, but region end must.
	rt := testRuntime(t, taskOpts(2))
	var grandchildRan atomic.Bool
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.Task(func(inner *Thread) {
				inner.Task(func(*Thread) { grandchildRan.Store(true) })
			})
			th.TaskWait()
		})
	})
	if !grandchildRan.Load() {
		t.Error("grandchild task never ran before region end")
	}
}

func TestNestedTaskWait(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	var sum atomic.Int64
	rt.Parallel(func(th *Thread) {
		th.Single(func() {
			th.Task(func(a *Thread) {
				a.Task(func(*Thread) { sum.Add(1) })
				a.Task(func(*Thread) { sum.Add(2) })
				a.TaskWait()
				if got := sum.Load(); got != 3 {
					t.Errorf("inner TaskWait returned with sum=%d, want 3", got)
				}
				sum.Add(4)
			})
			th.TaskWait()
			if got := sum.Load(); got != 7 {
				t.Errorf("outer TaskWait returned with sum=%d, want 7", got)
			}
		})
	})
}

func TestRecursiveFibonacciTasks(t *testing.T) {
	// The canonical BOTS-style recursive task pattern.
	rt := testRuntime(t, taskOpts(4))
	var fib func(th *Thread, n int) int64
	fib = func(th *Thread, n int) int64 {
		if n < 2 {
			return int64(n)
		}
		var a, b int64
		th.Task(func(inner *Thread) { a = fib(inner, n-1) })
		b = fib(th, n-2)
		th.TaskWait()
		return a + b
	}
	var got int64
	rt.Parallel(func(th *Thread) {
		th.Single(func() { got = fib(th, 15) })
	})
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestTaskStealingHappensAcrossThreads(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	var ran atomic.Int32
	rt.Parallel(func(th *Thread) {
		// Only thread 0 produces; the others must steal to make progress.
		th.Master(func() {
			for i := 0; i < 64; i++ {
				th.Task(func(*Thread) { ran.Add(1) })
			}
		})
	})
	if got := ran.Load(); got != 64 {
		t.Errorf("ran = %d, want 64", got)
	}
	// Stealing is scheduling-dependent, but with a single producer and an
	// end-of-region drain some tasks generally execute on other threads; we
	// only assert the counter is consistent (steals <= runs).
	st := rt.Stats()
	if st.TasksStolen > st.TasksRun {
		t.Errorf("TasksStolen=%d > TasksRun=%d", st.TasksStolen, st.TasksRun)
	}
}

func TestTasksFromAllThreads(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	var ran atomic.Int32
	rt.Parallel(func(th *Thread) {
		for i := 0; i < 25; i++ {
			th.Task(func(*Thread) { ran.Add(1) })
		}
	})
	if got := ran.Load(); got != 100 {
		t.Errorf("ran = %d, want 100", got)
	}
}

func TestTaskSpawningInsideLoop(t *testing.T) {
	rt := testRuntime(t, taskOpts(3))
	const n = 60
	hits := make([]int32, n)
	rt.Parallel(func(th *Thread) {
		th.ForNowait(n, func(i int) {
			th.Task(func(*Thread) { atomic.AddInt32(&hits[i], 1) })
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task for iter %d ran %d times, want 1", i, h)
		}
	}
}

func TestDequeOrdering(t *testing.T) {
	var d taskDeque
	d.init(4)
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.push(t1)
	d.push(t2)
	d.push(t3)
	if got := d.popBack(); got != t3 {
		t.Error("popBack should return newest")
	}
	if got := d.stealOne(); got != t1 {
		t.Error("stealOne should return oldest")
	}
	if got := d.popBack(); got != t2 {
		t.Error("popBack should return remaining")
	}
	if d.popBack() != nil || d.stealOne() != nil {
		t.Error("empty deque should return nil")
	}
}

func TestDequeGrowPreservesOrder(t *testing.T) {
	var d taskDeque
	d.init(4)
	var tasks []*task
	for i := 0; i < 100; i++ { // forces several doublings
		tk := &task{}
		tasks = append(tasks, tk)
		d.push(tk)
	}
	for i := 0; i < 40; i++ { // FIFO from the top
		if got := d.stealOne(); got != tasks[i] {
			t.Fatalf("stealOne #%d returned wrong task", i)
		}
	}
	for i := 99; i >= 40; i-- { // LIFO from the bottom
		if got := d.popBack(); got != tasks[i] {
			t.Fatalf("popBack for slot %d returned wrong task", i)
		}
	}
	if d.popBack() != nil || d.stealOne() != nil {
		t.Error("deque should be empty")
	}
}

func TestDequeBatchStealTakesHalf(t *testing.T) {
	var victim, own taskDeque
	victim.init(4)
	own.init(4)
	for i := 0; i < 10; i++ {
		victim.push(&task{})
	}
	first, n := victim.stealBatch(&own)
	if first == nil || n != 5 {
		t.Fatalf("stealBatch took %d of 10, want half (5)", n)
	}
	// first is returned directly; the surplus must sit on the thief's deque.
	got := 0
	for own.popBack() != nil {
		got++
	}
	if got != n-1 {
		t.Errorf("thief deque holds %d tasks, want %d", got, n-1)
	}
	left := 0
	for victim.stealOne() != nil {
		left++
	}
	if left != 5 {
		t.Errorf("victim retains %d tasks, want 5", left)
	}
}

func TestDequeBatchStealCapped(t *testing.T) {
	var victim, own taskDeque
	victim.init(4)
	own.init(4)
	for i := 0; i < 4*maxStealBatch; i++ {
		victim.push(&task{})
	}
	if _, n := victim.stealBatch(&own); n != maxStealBatch {
		t.Errorf("stealBatch took %d, want cap %d", n, maxStealBatch)
	}
}

// TestStealScanCoversAllVictims is the regression test for a blind spot in
// the steal scan: the old loop offset the victim window by id+stealAt and
// skipped self mid-window, so for some stealAt rotations one deque was
// never tried — after a few successful steals a thread could go
// permanently blind to the only loaded deque, and single-producer regions
// stopped stealing entirely after the first region. The fixed scan visits
// every other deque from any rotation, so steals must keep happening in
// later regions, not just the first.
func TestStealScanCoversAllVictims(t *testing.T) {
	rt := testRuntime(t, taskOpts(4))
	spin := func(*Thread) {
		for i := 0; i < 2000; i++ {
			_ = i * i
		}
	}
	prev := rt.Stats()
	for region := 0; region < 3; region++ {
		rt.Parallel(func(th *Thread) {
			// Single producer: every task another thread runs is a steal.
			th.Master(func() {
				for i := 0; i < 2000; i++ {
					th.Task(spin)
				}
			})
		})
		cur := rt.Stats()
		d := cur.Sub(prev)
		prev = cur
		if d.TasksRun != 2000 {
			t.Fatalf("region %d: ran %d tasks, want 2000", region, d.TasksRun)
		}
		if d.TasksStolen == 0 {
			t.Errorf("region %d: no steals — victim scan went blind", region)
		}
	}
}
