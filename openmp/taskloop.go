package openmp

import (
	"runtime"
	"sync/atomic"
)

// TaskGroup waits for ALL tasks spawned inside body (by any thread, at any
// nesting depth) to complete before returning — the OpenMP taskgroup
// construct, which is deeper than TaskWait's direct-children semantics.
//
// Implementation: tasks created while a group is active carry a group
// counter that descendant spawns inherit.
func (th *Thread) TaskGroup(body func(*Thread)) {
	g := &taskGroup{}
	prev := th.curGroup
	th.curGroup = g
	body(th)
	th.curGroup = prev
	for g.pending.Load() > 0 {
		if !th.runOneTask() {
			runtime.Gosched()
		}
	}
}

type taskGroup struct {
	pending atomic.Int64
}

// TaskLoop divides the iteration range [0, n) into roughly numTasks explicit
// tasks (the OpenMP taskloop construct with num_tasks). numTasks <= 0 picks
// 4 tasks per team thread, LLVM's default heuristic shape. TaskLoop returns
// when every iteration has executed (it carries an implicit taskgroup).
func (th *Thread) TaskLoop(n int, numTasks int, body func(i int)) {
	if n <= 0 {
		return
	}
	if numTasks <= 0 {
		numTasks = 4 * th.NumThreads()
	}
	if numTasks > n {
		numTasks = n
	}
	th.TaskGroup(func(inner *Thread) {
		for t := 0; t < numTasks; t++ {
			lo := t * n / numTasks
			hi := (t + 1) * n / numTasks
			inner.Task(func(*Thread) {
				for i := lo; i < hi; i++ {
					body(i)
				}
			})
		}
	})
}

// For2D is a convenience for collapse(2)-style worksharing: the n*m
// iteration space is flattened and divided by the configured schedule.
func (th *Thread) For2D(n, m int, body func(i, j int)) {
	th.For(n*m, func(k int) { body(k/m, k%m) })
}
