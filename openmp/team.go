package openmp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Team is one fork–join instance: n threads executing the same region body.
// Shared construct state (loop descriptors, reduction cells, single
// winners) is keyed by a per-thread construct sequence number, which
// requires — exactly as OpenMP does — that all threads of a team encounter
// the team's worksharing constructs in the same order.
type Team struct {
	rt   *Runtime
	n    int
	body func(*Thread)

	bar  barrier
	join sync.WaitGroup

	mu     sync.Mutex
	shared map[int64]*construct

	pool     *taskPool
	rootTask task
}

type construct struct {
	state any
	done  int32 // threads that have finished with the instance
}

func newTeam(rt *Runtime, n int, body func(*Thread)) *Team {
	tm := &Team{
		rt:     rt,
		n:      n,
		body:   body,
		shared: make(map[int64]*construct),
		pool:   newTaskPool(n),
	}
	tm.bar.n = int32(n)
	tm.join.Add(n)
	return tm
}

// run executes the region body as thread tid, drains leftover explicit
// tasks, and passes the implicit end-of-region barrier.
func (tm *Team) run(tid int) {
	defer tm.join.Done()
	th := &Thread{team: tm, id: tid, curTask: &tm.rootTask}
	tm.body(th)
	th.drainTasks()
	tm.bar.wait()
}

// instance returns the shared state for the construct with sequence number
// seq, creating it with create on first arrival.
func (tm *Team) instance(seq int64, create func() any) any {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	c, ok := tm.shared[seq]
	if !ok {
		c = &construct{state: create()}
		tm.shared[seq] = c
	}
	return c.state
}

// release marks the calling thread done with construct seq and frees the
// instance once every team thread has released it, keeping the shared map
// bounded for long-running applications.
func (tm *Team) release(seq int64) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	c, ok := tm.shared[seq]
	if !ok {
		return
	}
	c.done++
	if int(c.done) == tm.n {
		delete(tm.shared, seq)
	}
}

// Thread is the per-thread view of a parallel region, passed to the region
// body. It is not safe to share a Thread between goroutines.
type Thread struct {
	team     *Team
	id       int
	seq      int64 // worksharing constructs encountered so far
	curTask  *task
	curGroup *taskGroup // innermost active taskgroup, nil outside one
	stealAt  int        // rotating steal start position
}

// ID returns the thread number within the team (0 = primary).
func (th *Thread) ID() int { return th.id }

// NumThreads returns the team size.
func (th *Thread) NumThreads() int { return th.team.n }

// Runtime returns the owning runtime.
func (th *Thread) Runtime() *Runtime { return th.team.rt }

// Place returns the place index this thread is bound to, or -1 when
// unbound.
func (th *Thread) Place() int {
	p := th.team.rt.placement
	if p == nil || th.id >= len(p) {
		return -1
	}
	return p[th.id]
}

// nextSeq advances the thread's construct counter.
func (th *Thread) nextSeq() int64 {
	th.seq++
	return th.seq
}

// Barrier blocks until every thread of the team has called it.
func (th *Thread) Barrier() { th.team.bar.wait() }

// Master runs fn on the primary thread only. No implied barrier.
func (th *Thread) Master(fn func()) {
	if th.id == 0 {
		fn()
	}
}

// Single runs fn on the first thread to arrive at this construct; the other
// threads skip it. Nowait semantics: no implied barrier.
func (th *Thread) Single(fn func()) {
	seq := th.nextSeq()
	st := th.team.instance(seq, func() any { return new(atomic.Bool) }).(*atomic.Bool)
	if st.CompareAndSwap(false, true) {
		fn()
	}
	th.team.release(seq)
}

// Critical runs fn under the process-wide named critical-section lock.
func (th *Thread) Critical(name string, fn func()) {
	mu := th.team.rt.criticalFor(name)
	mu.Lock()
	defer mu.Unlock()
	fn()
}

// barrier is a generation-counting (sense-reversing) spin barrier. Spinning
// threads yield the processor, so the barrier is safe on any GOMAXPROCS.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint64
}

func (b *barrier) wait() {
	if b.n <= 1 {
		return
	}
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == gen {
		runtime.Gosched()
	}
}
