package openmp

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"omptune/openmp/trace"
)

// Team is one fork–join instance: n threads executing the same region body.
// Shared construct state (loop descriptors, reduction cells, single
// winners) is keyed by a per-thread construct sequence number, which
// requires — exactly as OpenMP does — that all threads of a team encounter
// the team's worksharing constructs in the same order.
//
// The runtime keeps one hot team alive for its whole lifetime (libomp's
// KMP_HOT_TEAMS behaviour): the Team, its Thread structs, construct ring and
// task pool are allocated once and reused by every region, so steady-state
// Parallel performs no allocations. Only ParallelN sub-teams are built per
// call.
type Team struct {
	rt   *Runtime
	n    int
	body func(*Thread)

	threads []Thread
	ring    constructRing
	bar     barrier

	pool     *taskPool
	rootTask task

	// stealOrder[i] is thread i's victim scan order, sorted by the NUMA
	// distance from i's bound place (ring order within a distance class);
	// stealLocal[i][j] classifies victim j as NUMA-local to thread i. Both
	// are nil when the runtime has no placement or no place-distance model,
	// in which case stealing falls back to the rotating uniform scan.
	stealOrder [][]int32
	stealLocal [][]bool
}

// newTeam builds a team shell; the region body is assigned per region by the
// dispatcher (Parallel or ParallelN) before any thread calls run.
func newTeam(rt *Runtime, n int) *Team {
	tm := &Team{
		rt:      rt,
		n:       n,
		threads: make([]Thread, n),
		pool:    newTaskPool(n, rt.opts.effectiveBlocktimeMS()),
	}
	for i := range tm.threads {
		th := &tm.threads[i]
		th.team = tm
		th.id = i
		th.stats = rt.stats.shard(i)
	}
	tm.stealOrder, tm.stealLocal = buildStealOrder(rt.placement, rt.opts.PlaceDistances, n)
	tm.bar.init(n, rt.opts.effectiveBlocktimeMS())
	return tm
}

// buildStealOrder precomputes each thread's distance-sorted victim order
// from the thread→place assignment and the pairwise place distances. Within
// one distance class victims keep ring order (i+1, i+2, … mod n), so
// equidistant victims are still scanned fairly rather than all threads
// hammering the same lowest-numbered one. A victim is classified local when
// its place is no farther than the thief's own place's self-distance (same
// place, or another place on the same NUMA node).
func buildStealOrder(placement []int, dist [][]float64, n int) ([][]int32, [][]bool) {
	if placement == nil || len(dist) == 0 || n < 2 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		if placement[i] < 0 || placement[i] >= len(dist) {
			return nil, nil
		}
	}
	order := make([][]int32, n)
	local := make([][]bool, n)
	for i := 0; i < n; i++ {
		row := dist[placement[i]]
		self := row[placement[i]]
		victims := make([]int32, 0, n-1)
		for k := 1; k < n; k++ { // ring order seeds the within-class tiebreak
			victims = append(victims, int32((i+k)%n))
		}
		sort.SliceStable(victims, func(a, b int) bool {
			return row[placement[victims[a]]] < row[placement[victims[b]]]
		})
		loc := make([]bool, n)
		for j := 0; j < n; j++ {
			if j != i {
				loc[j] = row[placement[j]] <= self
			}
		}
		order[i] = victims
		local[i] = loc
	}
	return order, local
}

// run executes the region body as thread tid, drains leftover explicit
// tasks, and passes the implicit end-of-region barrier. The barrier doubles
// as the join: when the primary thread (tid 0) returns, every team thread
// has finished the region.
func (tm *Team) run(tid int) {
	th := &tm.threads[tid]
	th.curTask = &tm.rootTask
	th.curGroup = nil
	// th.seq is deliberately NOT reset: construct sequence numbers stay
	// unique for the team's lifetime, which the construct ring's slot
	// identity encoding relies on. All threads execute the same construct
	// count per region, so the counters stay aligned across regions.
	if tr := tm.rt.tracer.Load(); tr != nil {
		gen := tm.rt.regionGen.Load()
		tr.Emit(tid, trace.KindImplicitBegin, gen, 0)
		tm.body(th)
		th.drainTasks()
		// The end-of-region barrier wait is a span of its own, closed before
		// the implicit task ends so the B/E pairs nest per thread.
		tr.Emit(tid, trace.KindBarrierEnter, gen, 0)
		tm.barrierWait(th)
		tr.Emit(tid, trace.KindBarrierLeave, gen, 0)
		tr.Emit(tid, trace.KindImplicitEnd, gen, 0)
		return
	}
	tm.body(th)
	th.drainTasks()
	tm.barrierWait(th)
}

// barrierWait passes the team barrier, timing the wait when a BarrierWait
// metrics sink is attached. All barrier entries (implicit end-of-region and
// explicit Thread.Barrier) funnel through here so the monitor sees every
// wait; the disabled path is one atomic load and a nil check on top of the
// wait itself.
func (tm *Team) barrierWait(th *Thread) {
	if m := tm.rt.metrics.Load(); m != nil && m.BarrierWait != nil {
		start := time.Now()
		tm.bar.wait(th.stats)
		m.BarrierWait.Observe(time.Since(start))
		return
	}
	tm.bar.wait(th.stats)
}

// instance returns the shared state for the construct with sequence number
// seq, creating it with create on first arrival. The returned handle must be
// passed back to release.
func (tm *Team) instance(seq int64, create func() any) (any, *constructSlot) {
	return tm.ring.instance(seq, create)
}

// release marks the calling thread done with construct seq and frees the
// instance once every team thread has released it, keeping construct state
// bounded for long-running applications.
func (tm *Team) release(h *constructSlot, seq int64) {
	tm.ring.release(h, seq, int32(tm.n))
}

// Thread is the per-thread view of a parallel region, passed to the region
// body. It is not safe to share a Thread between goroutines. Threads are
// cache-line padded: they live in the hot team's contiguous array and their
// mutable fields (seq, stealAt, curTask) are written region after region.
type Thread struct {
	team     *Team
	id       int
	seq      int64 // worksharing constructs encountered, team-lifetime monotonic
	curTask  *task
	curGroup *taskGroup // innermost active taskgroup, nil outside one
	stealAt  int        // last productive steal victim (scan start position)
	spawns   int        // tasks spawned; every 32nd spawn is a yield point
	stats    *statShard // this thread's stats shard
}

// ID returns the thread number within the team (0 = primary).
func (th *Thread) ID() int { return th.id }

// NumThreads returns the team size.
func (th *Thread) NumThreads() int { return th.team.n }

// Runtime returns the owning runtime.
func (th *Thread) Runtime() *Runtime { return th.team.rt }

// Place returns the place index this thread is bound to, or -1 when
// unbound.
func (th *Thread) Place() int {
	p := th.team.rt.placement
	if p == nil || th.id >= len(p) {
		return -1
	}
	return p[th.id]
}

// nextSeq advances the thread's construct counter.
func (th *Thread) nextSeq() int64 {
	th.seq++
	return th.seq
}

// Barrier blocks until every thread of the team has called it.
func (th *Thread) Barrier() {
	if tr := th.team.rt.tracer.Load(); tr != nil {
		gen := th.team.rt.regionGen.Load()
		tr.Emit(th.id, trace.KindBarrierEnter, gen, 0)
		th.team.barrierWait(th)
		tr.Emit(th.id, trace.KindBarrierLeave, gen, 0)
		return
	}
	th.team.barrierWait(th)
}

// Master runs fn on the primary thread only. No implied barrier.
func (th *Thread) Master(fn func()) {
	if th.id == 0 {
		fn()
	}
}

// Single runs fn on the first thread to arrive at this construct; the other
// threads skip it. Nowait semantics: no implied barrier.
func (th *Thread) Single(fn func()) {
	seq := th.nextSeq()
	st, h := th.team.instance(seq, func() any { return new(atomic.Bool) })
	if st.(*atomic.Bool).CompareAndSwap(false, true) {
		fn()
	}
	th.team.release(h, seq)
}

// Critical runs fn under the process-wide named critical-section lock.
func (th *Thread) Critical(name string, fn func()) {
	mu := th.team.rt.criticalFor(name)
	mu.Lock()
	defer mu.Unlock()
	fn()
}

// barrier is a generation-counting (sense-reversing) barrier that honours
// the runtime's wait policy: waiters spin within the KMP_BLOCKTIME budget
// (forever in turnaround mode) and then park on a broadcast channel until
// the last arriver releases the generation. Parks and wakes are charged to
// the waiting thread's stats shard, so Stats.Sleeps/Wakeups reflect barrier
// waits exactly like between-region worker waits. The hot counters (count,
// gen) sit on separate cache lines so arrivals don't false-share with
// release polling.
type barrier struct {
	n           int32
	spinForever bool
	blocktime   time.Duration

	_     [cacheLineSize]byte
	count atomic.Int32
	_     [cacheLineSize - 4]byte
	gen   atomic.Uint64
	_     [cacheLineSize - 8]byte
	park  atomic.Pointer[barrierGen]
}

// barrierGen is one generation's park point: a broadcast channel closed by
// whoever CASes it out of the barrier's park slot — either the generation's
// releaser, or a later-generation parker displacing a stale entry (whose
// generation is then already released). This ownership rule means every
// installed entry is closed exactly once and no parked waiter can be
// stranded by the releaser reading the park slot before the entry lands:
// the parker re-checks the generation after installing and only blocks if
// the generation is still open, in which case the releaser's later load is
// guaranteed to observe the entry (or a displacing successor that closed
// it).
type barrierGen struct {
	gen uint64
	ch  chan struct{}
}

func (b *barrier) init(n int, blocktimeMS int) {
	b.n = int32(n)
	if blocktimeMS == BlocktimeInfinite {
		b.spinForever = true
	} else {
		b.blocktime = time.Duration(blocktimeMS) * time.Millisecond
	}
}

func (b *barrier) wait(sh *statShard) {
	if b.n <= 1 {
		return
	}
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: open the next generation and wake this one's
		// parked waiters, if an entry for it is installed.
		b.count.Store(0)
		b.gen.Add(1)
		if p := b.park.Load(); p != nil && p.gen == gen {
			if b.park.CompareAndSwap(p, nil) {
				close(p.ch)
			}
			// CAS failure means a parker displaced (and closed) p.
		}
		return
	}
	if b.spinForever {
		for b.gen.Load() == gen {
			runtime.Gosched()
		}
		return
	}
	if b.blocktime > 0 {
		deadline := time.Now().Add(b.blocktime)
		for spins := 0; b.gen.Load() == gen; spins++ {
			if spins&63 == 63 && time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	b.parkWait(gen, sh)
}

// parkWait blocks until generation gen is released, installing (or joining)
// the generation's broadcast entry.
func (b *barrier) parkWait(gen uint64, sh *statShard) {
	for b.gen.Load() == gen {
		p := b.park.Load()
		if p == nil || p.gen != gen {
			np := &barrierGen{gen: gen, ch: make(chan struct{})}
			if !b.park.CompareAndSwap(p, np) {
				continue
			}
			if p != nil {
				// Displaced a stale entry: its generation was already
				// released (or is newer and will re-install), so waking its
				// waiters is required and harmless.
				close(p.ch)
			}
			p = np
		}
		// Re-check after the entry is visible: if the generation was
		// released while installing, the releaser may have missed the
		// entry — do not block (and do not count a sleep that never
		// happened; the entry itself is closed by a future displacer).
		if b.gen.Load() != gen {
			return
		}
		sh.sleeps.Add(1)
		<-p.ch
		sh.wakeups.Add(1)
	}
}
