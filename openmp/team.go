package openmp

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"omptune/openmp/profile"
	"omptune/openmp/trace"
)

// Team is one fork–join instance: n threads executing the same region body.
// Shared construct state (loop descriptors, reduction cells, single
// winners) is keyed by a per-thread construct sequence number, which
// requires — exactly as OpenMP does — that all threads of a team encounter
// the team's worksharing constructs in the same order.
//
// The runtime keeps hot teams alive (libomp's KMP_HOT_TEAMS behaviour): the
// outer team for the Runtime's whole lifetime, and one cached inner team
// per forking Thread (see Thread.Parallel). A team's Thread structs,
// construct ring and task pool are allocated once and reused by every
// region it runs, so steady-state fork–join at any nesting level performs
// no allocations. Only ParallelN sub-teams and serialized nested fallbacks
// are built per call.
//
// Every team is its own contention group: its barrier, construct ring,
// task deques and steal scans reference only tm.threads, so inner-team
// synchronization never generates CAS traffic on another team's cache
// lines.
type Team struct {
	rt   *Runtime
	n    int
	body func(*Thread)

	// level is the team's nesting depth: 0 for the outer hot team.
	level int
	// activeLevels counts the active (width > 1) levels enclosing and
	// including this team; nested forks compare it against
	// OMP_MAX_ACTIVE_LEVELS to decide whether to serialize.
	activeLevels int

	// regionID identifies the team's currently-running region (stamped
	// from rt.regionSeq by dispatchRegion, or inherited by ParallelN
	// sub-teams). Workers read it after acquiring gen, which
	// happens-after the dispatcher's store.
	regionID uint64

	// gen is the per-team region-generation counter this team's workers
	// await on. Per-team — not runtime-global — so dispatching an inner
	// region can never phantom-wake another team's spinning workers.
	gen atomic.Uint64

	// workers are this team's n-1 pooled goroutines (thread 0 is the
	// dispatcher's goroutine); wg tracks them for retire, and retired
	// tells them to exit on their next wakeup.
	workers []*worker
	wg      sync.WaitGroup
	retired atomic.Bool
	// reserved is the OMP_THREAD_LIMIT budget this cached team holds
	// (released at retirement).
	reserved int

	threads []Thread
	ring    constructRing
	bar     barrier

	// gtids lists the team threads' global ids in thread order, precomputed
	// so the profiler fold at region quiescence walks them without
	// allocating. nil for transient serialized teams, which are unprofiled
	// (their gtid is -1).
	gtids []int32

	pool     *taskPool
	rootTask task

	// stealOrder[i] is thread i's victim scan order, sorted by the NUMA
	// distance from i's bound place (ring order within a distance class);
	// stealLocal[i][j] classifies victim j as NUMA-local to thread i. Both
	// are nil when the runtime has no placement or no place-distance model,
	// in which case stealing falls back to the rotating uniform scan.
	stealOrder [][]int32
	stealLocal [][]bool
}

// newTeam builds a level-0 team shell over the runtime's base stat shards;
// the region body is assigned per region by the dispatcher (Parallel or
// ParallelN) before any thread calls run.
func newTeam(rt *Runtime, n int) *Team {
	tm := &Team{
		rt:      rt,
		n:       n,
		threads: make([]Thread, n),
		pool:    newTaskPool(n, rt.opts.effectiveBlocktimeMS()),
	}
	tm.gtids = make([]int32, n)
	for i := range tm.threads {
		th := &tm.threads[i]
		th.team = tm
		th.id = i
		th.gtid = int32(i)
		th.stats = rt.stats.shard(i)
		tm.gtids[i] = th.gtid
	}
	tm.stealOrder, tm.stealLocal = buildStealOrder(rt.placement, rt.opts.PlaceDistances, n)
	tm.bar.init(n, rt.opts.effectiveBlocktimeMS())
	return tm
}

// newNestedTeam builds an inner team of width n forked by parent, with its
// own level-tagged stat-shard block and fresh global thread ids for its
// workers (thread 0 is the parent's goroutine and keeps the parent's gtid —
// one goroutine owns exactly one trace ring). The team registers with the
// runtime (Close, Stats) and spawns its workers immediately, so caching it
// on the parent makes subsequent same-width forks allocation-free.
func newNestedTeam(rt *Runtime, parent *Thread, n int) *Team {
	block := &nestedShards{level: parent.team.level + 1, shards: make([]statShard, n)}
	tm := &Team{
		rt:           rt,
		n:            n,
		level:        parent.team.level + 1,
		activeLevels: parent.team.activeLevels,
		threads:      make([]Thread, n),
		pool:         newTaskPool(n, rt.opts.effectiveBlocktimeMS()),
	}
	if n > 1 {
		tm.activeLevels++
	}
	tm.gtids = make([]int32, n)
	for i := range tm.threads {
		th := &tm.threads[i]
		th.team = tm
		th.id = i
		th.stats = &block.shards[i]
		if i == 0 {
			th.gtid = parent.gtid
		} else {
			th.gtid = int32(rt.nextGtid.Add(1) - 1)
		}
		tm.gtids[i] = th.gtid
	}
	tm.bar.init(n, rt.opts.effectiveBlocktimeMS())
	rt.stats.registerNested(block)
	rt.registerTeam(tm)
	tm.spawnWorkers()
	return tm
}

// newTransientTeam builds a throwaway width-n team for the serialized
// nested fallback (Runtime.Parallel inside an active region): level 1,
// counters on the misc shard, no trace ring (gtid -1: the calling goroutine
// may already own a ring at another level, and a second producer on it is
// forbidden).
func newTransientTeam(rt *Runtime, n int) *Team {
	tm := &Team{
		rt:           rt,
		n:            n,
		level:        1,
		activeLevels: 1,
		threads:      make([]Thread, n),
		pool:         newTaskPool(n, rt.opts.effectiveBlocktimeMS()),
	}
	for i := range tm.threads {
		th := &tm.threads[i]
		th.team = tm
		th.id = i
		th.gtid = -1
		th.stats = rt.stats.misc()
	}
	tm.bar.init(n, rt.opts.effectiveBlocktimeMS())
	return tm
}

// spawnWorkers starts the team's n-1 worker goroutines (thread slots 1..n-1).
func (tm *Team) spawnWorkers() {
	rt := tm.rt
	tm.workers = make([]*worker, tm.n-1)
	for i := range tm.workers {
		w := &worker{tm: tm, slot: i + 1, wake: make(chan struct{}, 1)}
		tm.workers[i] = w
		rt.wg.Add(1)
		tm.wg.Add(1)
		go w.loop()
	}
}

// dispatchRegion runs one region on the team with the calling goroutine as
// thread 0: stamp a fresh region id, publish the body via the gen bump,
// wake parked workers, run, join at the end-of-region barrier. counted=false
// is the StopTrace flush path — invisible to the stats counters, the
// metrics seam and the profiler (the tracer is already detached, so nothing
// is emitted either). pc is the construct identity the profiler keys the
// region by (zero when profiling is off).
func (tm *Team) dispatchRegion(body func(*Thread), counted bool, pc uintptr) {
	rt := tm.rt
	if counted {
		tm.threads[0].stats.regions.Add(1)
		if tm.level > 0 {
			tm.threads[0].stats.nestedRegions.Add(1)
		}
	}
	tm.body = body
	tm.regionID = rt.regionSeq.Add(1)
	// The fork event is emitted before the generation bump, guaranteeing it
	// precedes every worker event of the region.
	tr := rt.tracer.Load()
	if tr != nil {
		tr.Emit(int(tm.threads[0].gtid), tm.level, trace.KindRegionFork, tm.regionID, int64(tm.n))
	}
	// Fork-to-join latency: the clock starts before the generation bump so
	// the measured span covers the whole dispatch (wakes included), and
	// stops after the primary passes the join barrier. One pointer load
	// when monitoring is off, one more when profiling is off.
	var mets *Metrics
	var prof *profile.Profiler
	var forkAt time.Time
	var profFork int64
	if counted {
		mets = rt.metrics.Load()
		if tm.gtids != nil {
			prof = rt.profiler.Load()
		}
	}
	if mets != nil && mets.Region != nil {
		forkAt = time.Now()
	}
	if prof != nil {
		profFork = prof.Now()
	}
	// Publish the region: the gen bump is the release edge workers acquire
	// tm.body and tm.regionID through; parked workers additionally get a
	// wake token.
	tm.gen.Add(1)
	for _, w := range tm.workers {
		w.wakeIfParked()
	}
	tm.run(0)
	// The end-of-region barrier doubles as the join: every worker has
	// finished the body (its last tm accesses precede its barrier arrival,
	// which precedes the primary's barrier pass).
	if mets != nil && mets.Region != nil {
		mets.Region.Observe(time.Since(forkAt))
	}
	if prof != nil {
		// Region quiescence: the join barrier ordered every worker's scratch
		// writes before this fold.
		prof.Fold(pc, tm.level, tm.regionID, tm.gtids, profFork)
	}
	if tr != nil {
		tr.Emit(int(tm.threads[0].gtid), tm.level, trace.KindRegionJoin, tm.regionID, 0)
	}
	tm.body = nil
}

// retire releases a cached inner team: its workers exit on the next gen
// bump, their budget reservation returns to the pool. Must only be called
// while the team is idle (between its regions), which Thread.innerTeam
// guarantees — the forking thread is the team's own thread 0.
func (tm *Team) retire() {
	tm.retired.Store(true)
	tm.gen.Add(1)
	for _, w := range tm.workers {
		w.wakeIfParked()
	}
	tm.wg.Wait()
	tm.rt.releaseThreads(tm.reserved)
	tm.reserved = 0
}

// buildStealOrder precomputes each thread's distance-sorted victim order
// from the thread→place assignment and the pairwise place distances. Within
// one distance class victims keep ring order (i+1, i+2, … mod n), so
// equidistant victims are still scanned fairly rather than all threads
// hammering the same lowest-numbered one. A victim is classified local when
// its place is no farther than the thief's own place's self-distance (same
// place, or another place on the same NUMA node).
func buildStealOrder(placement []int, dist [][]float64, n int) ([][]int32, [][]bool) {
	if placement == nil || len(dist) == 0 || n < 2 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		if placement[i] < 0 || placement[i] >= len(dist) {
			return nil, nil
		}
	}
	order := make([][]int32, n)
	local := make([][]bool, n)
	for i := 0; i < n; i++ {
		row := dist[placement[i]]
		self := row[placement[i]]
		victims := make([]int32, 0, n-1)
		for k := 1; k < n; k++ { // ring order seeds the within-class tiebreak
			victims = append(victims, int32((i+k)%n))
		}
		sort.SliceStable(victims, func(a, b int) bool {
			return row[placement[victims[a]]] < row[placement[victims[b]]]
		})
		loc := make([]bool, n)
		for j := 0; j < n; j++ {
			if j != i {
				loc[j] = row[placement[j]] <= self
			}
		}
		order[i] = victims
		local[i] = loc
	}
	return order, local
}

// run executes the region body as thread tid, drains leftover explicit
// tasks, and passes the implicit end-of-region barrier. The barrier doubles
// as the join: when the primary thread (tid 0) returns, every team thread
// has finished the region.
func (tm *Team) run(tid int) {
	th := &tm.threads[tid]
	th.curTask = &tm.rootTask
	th.curGroup = nil
	// th.seq is deliberately NOT reset: construct sequence numbers stay
	// unique for the team's lifetime, which the construct ring's slot
	// identity encoding relies on. All threads execute the same construct
	// count per region, so the counters stay aligned across regions.
	//
	// The profiler stamps bracket the implicit task: ThreadStart zeroes and
	// claims this thread's scratch slot for the region, ThreadArrive marks
	// the end-of-region barrier arrival. The fold (on the dispatcher, after
	// its barrier pass) derives busy time and final barrier wait from the
	// two stamps.
	p := tm.rt.profiler.Load()
	if p != nil {
		p.ThreadStart(int(th.gtid), tm.level, tm.regionID)
	}
	if tr := tm.rt.tracer.Load(); tr != nil {
		gtid, id, lvl := int(th.gtid), tm.regionID, tm.level
		tr.Emit(gtid, lvl, trace.KindImplicitBegin, id, 0)
		tm.body(th)
		th.drainTasks()
		if p != nil {
			p.ThreadArrive(gtid, lvl)
		}
		// The end-of-region barrier wait is a span of its own, closed before
		// the implicit task ends so the B/E pairs nest per thread.
		tr.Emit(gtid, lvl, trace.KindBarrierEnter, id, 0)
		tm.barrierWait(th)
		tr.Emit(gtid, lvl, trace.KindBarrierLeave, id, 0)
		tr.Emit(gtid, lvl, trace.KindImplicitEnd, id, 0)
		return
	}
	tm.body(th)
	th.drainTasks()
	if p != nil {
		p.ThreadArrive(int(th.gtid), tm.level)
	}
	tm.barrierWait(th)
}

// barrierWait passes the team barrier, timing the wait when a BarrierWait
// metrics sink is attached. All barrier entries (implicit end-of-region and
// explicit Thread.Barrier) funnel through here so the monitor sees every
// wait; the disabled path is one atomic load and a nil check on top of the
// wait itself.
func (tm *Team) barrierWait(th *Thread) {
	if m := tm.rt.metrics.Load(); m != nil && m.BarrierWait != nil {
		start := time.Now()
		tm.bar.wait(th.stats)
		m.BarrierWait.Observe(time.Since(start))
		return
	}
	tm.bar.wait(th.stats)
}

// instance returns the shared state for the construct with sequence number
// seq, creating it with create on first arrival. The returned handle must be
// passed back to release.
func (tm *Team) instance(seq int64, create func() any) (any, *constructSlot) {
	return tm.ring.instance(seq, create)
}

// release marks the calling thread done with construct seq and frees the
// instance once every team thread has released it, keeping construct state
// bounded for long-running applications.
func (tm *Team) release(h *constructSlot, seq int64) {
	tm.ring.release(h, seq, int32(tm.n))
}

// Thread is the per-thread view of a parallel region, passed to the region
// body. It is not safe to share a Thread between goroutines. Threads are
// cache-line padded: they live in the hot team's contiguous array and their
// mutable fields (seq, stealAt, curTask) are written region after region.
type Thread struct {
	team     *Team
	id       int
	gtid     int32 // global thread id (trace-ring index); -1 = untraced
	seq      int64 // worksharing constructs encountered, team-lifetime monotonic
	curTask  *task
	curGroup *taskGroup // innermost active taskgroup, nil outside one
	stealAt  int        // last productive steal victim (scan start position)
	spawns   int        // tasks spawned; every 32nd spawn is a yield point
	stats    *statShard // this thread's stats shard

	// inner is this thread's cached nested hot team — the per-level
	// hot-team cache. It is built (and its budget reserved) on the first
	// nested fork and reused by every subsequent fork of the same width,
	// so steady-state nested fork–join allocates nothing and re-spawns no
	// goroutines; innerWant remembers the width it was built for.
	inner     *Team
	innerWant int
}

// ID returns the thread number within the team (0 = primary).
func (th *Thread) ID() int { return th.id }

// NumThreads returns the team size.
func (th *Thread) NumThreads() int { return th.team.n }

// Level returns the nesting depth of the region this thread is executing
// (0 = an outer region).
func (th *Thread) Level() int { return th.team.level }

// Runtime returns the owning runtime.
func (th *Thread) Runtime() *Runtime { return th.team.rt }

// Parallel forks a nested parallel region from this thread: the body runs
// on an inner team whose width follows the OMP_NUM_THREADS per-level list
// for the next nesting level, clamped by OMP_MAX_ACTIVE_LEVELS (a region
// past the active-level limit serializes to width 1) and by the remaining
// OMP_THREAD_LIMIT budget (a fork the budget cannot fully cover runs with
// whatever width was granted — graceful serialization, never an error).
// The calling thread participates as the inner team's thread 0; the inner
// team is cached on this thread, so steady-state nested fork–join is
// allocation-free. Returns after the inner region's end barrier.
func (th *Thread) Parallel(body func(*Thread)) {
	var pc uintptr
	if th.team.rt.profiler.Load() != nil {
		pc = callerPC()
	}
	th.forkNested(0, pc, body)
}

// ParallelN is Parallel with a num_threads clause: it requests width n for
// the inner team (still subject to the active-level limit and the thread
// budget). n < 1 falls back to the per-level default.
func (th *Thread) ParallelN(n int, body func(*Thread)) {
	var pc uintptr
	if th.team.rt.profiler.Load() != nil {
		pc = callerPC()
	}
	th.forkNested(n, pc, body)
}

func (th *Thread) forkNested(request int, pc uintptr, body func(*Thread)) {
	th.innerTeam(request).dispatchRegion(body, true, pc)
}

// innerTeam returns this thread's cached inner team for the requested
// width, building (or rebuilding, when the resolved width changed) it on
// demand. Width resolution: explicit request, else the OMP_NUM_THREADS
// list entry for the next level; then 1 if the active-level limit is
// reached; then clamped to 1 + whatever OMP_THREAD_LIMIT budget remains.
func (th *Thread) innerTeam(request int) *Team {
	rt := th.team.rt
	want := request
	if want <= 0 {
		want = rt.opts.widthForLevel(th.team.level + 1)
	}
	if want < 1 ||
		rt.opts.Library == LibSerial ||
		th.team.activeLevels >= rt.opts.effectiveMaxActiveLevels() {
		want = 1
	}
	if th.inner != nil && th.innerWant == want {
		return th.inner
	}
	th.retireInner()
	granted := 1 // the forking thread itself is free
	if want > 1 {
		granted += rt.reserveThreads(want - 1)
	}
	tm := newNestedTeam(rt, th, granted)
	tm.reserved = granted - 1
	th.inner, th.innerWant = tm, want
	return tm
}

// retireInner drops this thread's cached inner team, releasing its workers
// and budget reservation.
func (th *Thread) retireInner() {
	if th.inner == nil {
		return
	}
	th.inner.retire()
	th.inner = nil
	th.innerWant = 0
}

// Place returns the place index this thread is bound to, or -1 when
// unbound.
func (th *Thread) Place() int {
	p := th.team.rt.placement
	if p == nil || th.id >= len(p) {
		return -1
	}
	return p[th.id]
}

// nextSeq advances the thread's construct counter.
func (th *Thread) nextSeq() int64 {
	th.seq++
	return th.seq
}

// Barrier blocks until every thread of the team has called it (inner-team
// barriers involve only the inner team's threads). The profiler charges the
// whole passage to the thread's explicit-barrier wait: unlike the
// end-of-region barrier (whose wait the fold derives from arrival stamps),
// a mid-region barrier completes strictly inside the region, so
// self-timing here is race-free.
func (th *Thread) Barrier() {
	p := th.team.rt.profiler.Load()
	var t0 int64
	if p != nil {
		t0 = p.Now()
	}
	if tr := th.team.rt.tracer.Load(); tr != nil {
		tr.Emit(int(th.gtid), th.team.level, trace.KindBarrierEnter, th.team.regionID, 0)
		th.team.barrierWait(th)
		tr.Emit(int(th.gtid), th.team.level, trace.KindBarrierLeave, th.team.regionID, 0)
	} else {
		th.team.barrierWait(th)
	}
	if p != nil {
		p.AddBarrier(int(th.gtid), th.team.level, p.Now()-t0)
	}
}

// Master runs fn on the primary thread only. No implied barrier.
func (th *Thread) Master(fn func()) {
	if th.id == 0 {
		fn()
	}
}

// Single runs fn on the first thread to arrive at this construct; the other
// threads skip it. Nowait semantics: no implied barrier.
func (th *Thread) Single(fn func()) {
	seq := th.nextSeq()
	st, h := th.team.instance(seq, func() any { return new(atomic.Bool) })
	if st.(*atomic.Bool).CompareAndSwap(false, true) {
		fn()
	}
	th.team.release(h, seq)
}

// Critical runs fn under the process-wide named critical-section lock.
func (th *Thread) Critical(name string, fn func()) {
	mu := th.team.rt.criticalFor(name)
	mu.Lock()
	defer mu.Unlock()
	fn()
}

// barrier is a generation-counting (sense-reversing) barrier that honours
// the runtime's wait policy: waiters spin within the KMP_BLOCKTIME budget
// (forever in turnaround mode) and then park on a broadcast channel until
// the last arriver releases the generation. Parks and wakes are charged to
// the waiting thread's stats shard, so Stats.Sleeps/Wakeups reflect barrier
// waits exactly like between-region worker waits. The hot counters (count,
// gen) sit on separate cache lines so arrivals don't false-share with
// release polling.
type barrier struct {
	n           int32
	spinForever bool
	blocktime   time.Duration

	_     [cacheLineSize]byte
	count atomic.Int32
	_     [cacheLineSize - 4]byte
	gen   atomic.Uint64
	_     [cacheLineSize - 8]byte
	park  atomic.Pointer[barrierGen]
}

// barrierGen is one generation's park point: a broadcast channel closed by
// whoever CASes it out of the barrier's park slot — either the generation's
// releaser, or a later-generation parker displacing a stale entry (whose
// generation is then already released). This ownership rule means every
// installed entry is closed exactly once and no parked waiter can be
// stranded by the releaser reading the park slot before the entry lands:
// the parker re-checks the generation after installing and only blocks if
// the generation is still open, in which case the releaser's later load is
// guaranteed to observe the entry (or a displacing successor that closed
// it).
type barrierGen struct {
	gen uint64
	ch  chan struct{}
}

func (b *barrier) init(n int, blocktimeMS int) {
	b.n = int32(n)
	if blocktimeMS == BlocktimeInfinite {
		b.spinForever = true
	} else {
		b.blocktime = time.Duration(blocktimeMS) * time.Millisecond
	}
}

func (b *barrier) wait(sh *statShard) {
	if b.n <= 1 {
		return
	}
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: open the next generation and wake this one's
		// parked waiters, if an entry for it is installed.
		b.count.Store(0)
		b.gen.Add(1)
		if p := b.park.Load(); p != nil && p.gen == gen {
			if b.park.CompareAndSwap(p, nil) {
				close(p.ch)
			}
			// CAS failure means a parker displaced (and closed) p.
		}
		return
	}
	if b.spinForever {
		for b.gen.Load() == gen {
			runtime.Gosched()
		}
		return
	}
	if b.blocktime > 0 {
		deadline := time.Now().Add(b.blocktime)
		for spins := 0; b.gen.Load() == gen; spins++ {
			if spins&63 == 63 && time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	b.parkWait(gen, sh)
}

// parkWait blocks until generation gen is released, installing (or joining)
// the generation's broadcast entry.
func (b *barrier) parkWait(gen uint64, sh *statShard) {
	for b.gen.Load() == gen {
		p := b.park.Load()
		if p == nil || p.gen != gen {
			np := &barrierGen{gen: gen, ch: make(chan struct{})}
			if !b.park.CompareAndSwap(p, np) {
				continue
			}
			if p != nil {
				// Displaced a stale entry: its generation was already
				// released (or is newer and will re-install), so waking its
				// waiters is required and harmless.
				close(p.ch)
			}
			p = np
		}
		// Re-check after the entry is visible: if the generation was
		// released while installing, the releaser may have missed the
		// entry — do not block (and do not count a sleep that never
		// happened; the entry itself is closed by a future displacer).
		if b.gen.Load() != gen {
			return
		}
		sh.sleeps.Add(1)
		<-p.ch
		sh.wakeups.Add(1)
	}
}
