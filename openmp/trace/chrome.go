package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON array — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
// Span kinds are emitted as B/E duration pairs per thread track; instant
// kinds as thread-scoped "i" events; thread names as "M" metadata.
type chromeEvent struct {
	Name string           `json:"name,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int32            `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeSpec maps an event kind onto its Chrome phase, track name and
// argument label.
var chromeSpec = [kindMax]struct {
	ph, name, argName string
}{
	KindRegionFork:    {"B", "parallel region", "threads"},
	KindRegionJoin:    {"E", "", ""},
	KindImplicitBegin: {"B", "implicit task", ""},
	KindImplicitEnd:   {"E", "", ""},
	KindBarrierEnter:  {"B", "barrier wait", ""},
	KindBarrierLeave:  {"E", "", ""},
	KindChunk:         {"i", "chunk", "iters"},
	KindTaskCreate:    {"i", "task create", ""},
	KindTaskBegin:     {"B", "task", ""},
	KindTaskEnd:       {"E", "", ""},
	KindTaskSteal:     {"i", "task steal", ""}, // packed Arg: unpacked inline below
	KindPark:          {"i", "park", ""},
	KindWake:          {"i", "wake", ""},
}

// WriteChrome renders the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}). Events must be in the order Collect returns
// (non-decreasing TS); the output is loadable by Perfetto.
func WriteChrome(w io.Writer, d Data) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(&noNewline{w})
	first := true
	write := func(ce chromeEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ce)
	}
	// Thread-name metadata first, so Perfetto labels the tracks. Metadata
	// args are strings, unlike the int64 args of chromeEvent, so these are
	// written literally.
	for tid := 0; tid < d.Threads; tid++ {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		if _, err := fmt.Fprintf(w,
			`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"omp thread %d"}}`,
			tid, tid); err != nil {
			return err
		}
	}
	for _, e := range d.Events {
		if int(e.Kind) >= len(chromeSpec) || chromeSpec[e.Kind].ph == "" {
			continue
		}
		spec := chromeSpec[e.Kind]
		ce := chromeEvent{
			Name: spec.name,
			Ph:   spec.ph,
			TS:   float64(e.TS) / 1e3,
			Pid:  0,
			Tid:  e.Tid,
		}
		if spec.ph == "i" {
			ce.S = "t"
		}
		if spec.ph != "E" {
			ce.Args = map[string]int64{"region": int64(e.Region), "level": int64(e.Level)}
			if e.Kind == KindTaskSteal {
				// Packed payload (see StealArg): unpack into separate args so
				// Perfetto shows victim/batch/locality as distinct fields.
				ce.Args["victim"] = int64(e.StealVictim())
				ce.Args["batch"] = int64(e.StealBatch())
				ce.Args["locality"] = int64(e.StealLocality())
			} else if spec.argName != "" {
				ce.Args[spec.argName] = e.Arg
			}
		}
		if err := write(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// noNewline strips the trailing newline json.Encoder appends, keeping the
// array single-line-per-event without double separators.
type noNewline struct{ w io.Writer }

func (n *noNewline) Write(p []byte) (int, error) {
	m := len(p)
	for m > 0 && p[m-1] == '\n' {
		m--
	}
	if m > 0 {
		if _, err := n.w.Write(p[:m]); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// ValidateChrome parses a Chrome trace-event JSON document and checks its
// shape: a non-empty traceEvents array whose entries carry ph/pid/tid and a
// numeric ts, with timestamps non-decreasing in file order (metadata events
// excepted). With strictPairs — valid only when the trace dropped no events
// — it additionally checks that every thread's B/E spans balance and close.
// It returns the number of non-metadata events.
func ValidateChrome(r io.Reader, strictPairs bool) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Tid  int32    `json:"tid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: empty traceEvents array")
	}
	n := 0
	lastTS := -1.0
	depth := map[int32]int{}
	for i, e := range doc.TraceEvents {
		if e.Ph == "" {
			return n, fmt.Errorf("trace: event %d has no ph", i)
		}
		if e.Ph == "M" {
			continue
		}
		n++
		if e.TS == nil {
			return n, fmt.Errorf("trace: event %d (%s) has no ts", i, e.Ph)
		}
		if *e.TS < lastTS {
			return n, fmt.Errorf("trace: event %d ts %v decreases below %v", i, *e.TS, lastTS)
		}
		lastTS = *e.TS
		switch e.Ph {
		case "B":
			depth[e.Tid]++
		case "E":
			depth[e.Tid]--
			if strictPairs && depth[e.Tid] < 0 {
				return n, fmt.Errorf("trace: event %d: E without matching B on tid %d", i, e.Tid)
			}
		case "i", "I", "X":
			// instants and complete events need no pairing
		default:
			return n, fmt.Errorf("trace: event %d has unsupported ph %q", i, e.Ph)
		}
	}
	if strictPairs {
		for tid, d := range depth {
			if d != 0 {
				return n, fmt.Errorf("trace: tid %d ends with %d unclosed span(s)", tid, d)
			}
		}
	}
	return n, nil
}
