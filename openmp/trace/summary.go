package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RegionMetrics are the derived per-region statistics — the quantities the
// paper attributes knob effects to, computed from the raw event stream.
type RegionMetrics struct {
	// Gen is the region's id (the runtime's global region counter, shared
	// across nesting levels).
	Gen uint64 `json:"gen"`
	// Level is the region's nesting depth: 0 for outer regions, 1 for
	// regions forked from inside a level-0 region, and so on.
	Level int `json:"level"`
	// Threads is the team size recorded at the fork, or the number of
	// threads that reported an implicit task when the fork was not traced.
	Threads int `json:"threads"`
	// Wall is the fork→join duration on the primary thread.
	Wall time.Duration `json:"wall_ns"`
	// BarrierWait is the total time team threads spent inside barrier
	// waits (spinning or parked) during the region, summed over threads.
	BarrierWait time.Duration `json:"barrier_wait_ns"`
	// WaitShare is BarrierWait divided by Threads×Wall: the fraction of
	// the region's aggregate thread-time lost to barrier waiting.
	WaitShare float64 `json:"wait_share"`
	// Imbalance is the arrival spread (max−min enter timestamp) at the
	// region's final barrier — the end-of-region barrier every thread
	// passes — i.e. how unevenly the body's work was distributed.
	Imbalance time.Duration `json:"imbalance_ns"`
	// Chunks counts worksharing chunks dispatched in the region, and
	// ChunksPerThread is its per-thread breakdown (histogram).
	Chunks          int   `json:"chunks"`
	ChunksPerThread []int `json:"chunks_per_thread,omitempty"`
	// TasksCreated / TasksRun / TasksStolen count explicit-task activity.
	TasksCreated int `json:"tasks_created"`
	TasksRun     int `json:"tasks_run"`
	TasksStolen  int `json:"tasks_stolen"`
	// StealBatches counts steal visits (TasksStolen/StealBatches is the
	// mean half-batch size); StealsLocal/StealsRemote split TasksStolen by
	// the victim's NUMA locality (both zero when locality was unknown).
	StealBatches int `json:"steal_batches"`
	StealsLocal  int `json:"steals_local"`
	StealsRemote int `json:"steals_remote"`
}

// Summary is the reduction of a trace to per-region metrics plus
// whole-trace aggregates.
type Summary struct {
	Threads int             `json:"threads"`
	Events  int             `json:"events"`
	Dropped uint64          `json:"dropped"`
	Regions []RegionMetrics `json:"regions,omitempty"`

	// Aggregates over all regions (and, for parks/wakes, between them).
	TotalWall        time.Duration `json:"total_wall_ns"`
	TotalBarrierWait time.Duration `json:"total_barrier_wait_ns"`
	WaitShare        float64       `json:"wait_share"` // TotalBarrierWait / Σ(threads×wall)
	AvgImbalance     time.Duration `json:"avg_imbalance_ns"`
	MaxImbalance     time.Duration `json:"max_imbalance_ns"`
	Chunks           int           `json:"chunks"`
	ChunksPerThread  []int         `json:"chunks_per_thread,omitempty"`
	TasksCreated     int           `json:"tasks_created"`
	TasksRun         int           `json:"tasks_run"`
	TasksStolen      int           `json:"tasks_stolen"`
	StealRate        float64       `json:"steal_rate"` // TasksStolen / TasksRun
	StealBatches     int           `json:"steal_batches"`
	StealsLocal      int           `json:"steals_local"`
	StealsRemote     int           `json:"steals_remote"`
	AvgStealBatch    float64       `json:"avg_steal_batch"` // TasksStolen / StealBatches
	Parks            int           `json:"parks"`
	Wakes            int           `json:"wakes"`

	// NestedRegions counts regions at nesting level ≥ 1; Levels breaks the
	// trace down per nesting depth (ascending, level 0 first).
	NestedRegions int            `json:"nested_regions"`
	Levels        []LevelMetrics `json:"levels,omitempty"`
}

// LevelMetrics aggregate the regions of one nesting depth.
type LevelMetrics struct {
	Level   int `json:"level"`
	Regions int `json:"regions"`
	// MaxThreads is the widest team observed at this level.
	MaxThreads int `json:"max_threads"`
	// TotalWall sums the fork→join walls of this level's regions. Inner
	// walls are nested inside outer walls, so levels overlap in time.
	TotalWall time.Duration `json:"total_wall_ns"`
}

// regionAcc accumulates one region's events during the scan.
type regionAcc struct {
	gen          uint64
	level        int
	threads      int
	forkTS       int64
	joinTS       int64
	hasFork      bool
	hasJoin      bool
	implicit     map[int32]bool
	barrierEnter map[int32]int64 // pending enter per tid
	lastEnter    map[int32]int64 // latest barrier arrival per tid
	barrierWait  int64
	chunks       map[int32]int
	created      int
	run          int
	stolen       int
	stealBatches int
	stealsLocal  int
	stealsRemote int
}

func newRegionAcc(gen uint64) *regionAcc {
	return &regionAcc{
		gen:          gen,
		implicit:     map[int32]bool{},
		barrierEnter: map[int32]int64{},
		lastEnter:    map[int32]int64{},
		chunks:       map[int32]int{},
	}
}

// Summarize derives per-region metrics from a collected trace. Incomplete
// spans (from dropped events or a trace stopped mid-stream) are skipped
// rather than guessed at.
func Summarize(d Data) *Summary {
	s := &Summary{Threads: d.Threads, Events: len(d.Events), Dropped: d.Dropped}
	regions := map[uint64]*regionAcc{}
	acc := func(gen uint64) *regionAcc {
		a := regions[gen]
		if a == nil {
			a = newRegionAcc(gen)
			regions[gen] = a
		}
		return a
	}
	for _, e := range d.Events {
		// Park/wake events are between-regions instants; everything else
		// belongs to a region and carries its nesting level.
		if e.Kind != KindPark && e.Kind != KindWake {
			acc(e.Region).level = int(e.Level)
		}
		switch e.Kind {
		case KindRegionFork:
			a := acc(e.Region)
			a.forkTS, a.hasFork = e.TS, true
			a.threads = int(e.Arg)
		case KindRegionJoin:
			a := acc(e.Region)
			a.joinTS, a.hasJoin = e.TS, true
		case KindImplicitBegin:
			acc(e.Region).implicit[e.Tid] = true
		case KindBarrierEnter:
			a := acc(e.Region)
			a.barrierEnter[e.Tid] = e.TS
			a.lastEnter[e.Tid] = e.TS
		case KindBarrierLeave:
			a := acc(e.Region)
			if enter, ok := a.barrierEnter[e.Tid]; ok {
				a.barrierWait += e.TS - enter
				delete(a.barrierEnter, e.Tid)
			}
		case KindChunk:
			acc(e.Region).chunks[e.Tid]++
		case KindTaskCreate:
			acc(e.Region).created++
		case KindTaskBegin:
			acc(e.Region).run++
		case KindTaskSteal:
			a := acc(e.Region)
			batch := e.StealBatch()
			a.stolen += batch
			a.stealBatches++
			switch e.StealLocality() {
			case StealLocalityLocal:
				a.stealsLocal += batch
			case StealLocalityRemote:
				a.stealsRemote += batch
			}
		case KindPark:
			s.Parks++
		case KindWake:
			s.Wakes++
		}
	}

	gens := make([]uint64, 0, len(regions))
	for gen := range regions {
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	s.ChunksPerThread = make([]int, d.Threads)
	var aggThreadTime time.Duration
	var imbalanceSum time.Duration
	imbalanced := 0
	levels := map[int]*LevelMetrics{}
	for _, gen := range gens {
		a := regions[gen]
		m := RegionMetrics{
			Gen:          a.gen,
			Level:        a.level,
			Threads:      a.threads,
			BarrierWait:  time.Duration(a.barrierWait),
			TasksCreated: a.created,
			TasksRun:     a.run,
			TasksStolen:  a.stolen,
			StealBatches: a.stealBatches,
			StealsLocal:  a.stealsLocal,
			StealsRemote: a.stealsRemote,
		}
		if m.Threads == 0 {
			m.Threads = len(a.implicit)
		}
		if a.hasFork && a.hasJoin {
			m.Wall = time.Duration(a.joinTS - a.forkTS)
		}
		m.ChunksPerThread = make([]int, d.Threads)
		for tid, n := range a.chunks {
			if int(tid) < len(m.ChunksPerThread) {
				m.ChunksPerThread[tid] += n
				s.ChunksPerThread[tid] += n
			}
			m.Chunks += n
		}
		if len(a.lastEnter) >= 2 {
			var minTS, maxTS int64
			first := true
			for _, ts := range a.lastEnter {
				if first {
					minTS, maxTS, first = ts, ts, false
					continue
				}
				if ts < minTS {
					minTS = ts
				}
				if ts > maxTS {
					maxTS = ts
				}
			}
			m.Imbalance = time.Duration(maxTS - minTS)
			imbalanceSum += m.Imbalance
			imbalanced++
			if m.Imbalance > s.MaxImbalance {
				s.MaxImbalance = m.Imbalance
			}
		}
		if m.Wall > 0 && m.Threads > 0 {
			m.WaitShare = float64(m.BarrierWait) / (float64(m.Threads) * float64(m.Wall))
			aggThreadTime += time.Duration(m.Threads) * m.Wall
		}
		s.TotalWall += m.Wall
		s.TotalBarrierWait += m.BarrierWait
		s.Chunks += m.Chunks
		s.TasksCreated += m.TasksCreated
		s.TasksRun += m.TasksRun
		s.TasksStolen += m.TasksStolen
		s.StealBatches += m.StealBatches
		s.StealsLocal += m.StealsLocal
		s.StealsRemote += m.StealsRemote
		if m.Level > 0 {
			s.NestedRegions++
		}
		lm := levels[m.Level]
		if lm == nil {
			lm = &LevelMetrics{Level: m.Level}
			levels[m.Level] = lm
		}
		lm.Regions++
		if m.Threads > lm.MaxThreads {
			lm.MaxThreads = m.Threads
		}
		lm.TotalWall += m.Wall
		s.Regions = append(s.Regions, m)
	}
	for _, lm := range levels {
		s.Levels = append(s.Levels, *lm)
	}
	sort.Slice(s.Levels, func(i, j int) bool { return s.Levels[i].Level < s.Levels[j].Level })
	if aggThreadTime > 0 {
		s.WaitShare = float64(s.TotalBarrierWait) / float64(aggThreadTime)
	}
	if imbalanced > 0 {
		s.AvgImbalance = imbalanceSum / time.Duration(imbalanced)
	}
	if s.TasksRun > 0 {
		s.StealRate = float64(s.TasksStolen) / float64(s.TasksRun)
	}
	if s.StealBatches > 0 {
		s.AvgStealBatch = float64(s.TasksStolen) / float64(s.StealBatches)
	}
	return s
}

// WriteJSON writes the summary as one indented JSON object — the
// machine-readable sibling of String for scripted consumers (durations are
// integer nanoseconds, per the `_ns` field names).
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the summary as a per-region table with aggregate header
// lines, ending with one machine-parseable key=value line (used by
// `make trace-smoke`).
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d threads, %d events (%d dropped), %d regions\n",
		s.Threads, s.Events, s.Dropped, len(s.Regions))
	fmt.Fprintf(&b, "tasks: created %d, run %d, stolen %d (steal rate %.1f%%)\n",
		s.TasksCreated, s.TasksRun, s.TasksStolen, 100*s.StealRate)
	if s.StealBatches > 0 {
		fmt.Fprintf(&b, "steals: %d batches (avg %.1f tasks/batch)", s.StealBatches, s.AvgStealBatch)
		if s.StealsLocal+s.StealsRemote > 0 {
			fmt.Fprintf(&b, ", locality %d local / %d remote", s.StealsLocal, s.StealsRemote)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "chunks: %d dispatched%s\n", s.Chunks, perThread(s.ChunksPerThread))
	fmt.Fprintf(&b, "barriers: total wait %s (share %.1f%% of aggregate thread-time); end-barrier imbalance avg %s, max %s\n",
		round(s.TotalBarrierWait), 100*s.WaitShare, round(s.AvgImbalance), round(s.MaxImbalance))
	fmt.Fprintf(&b, "workers: %d parks, %d wakes between regions\n", s.Parks, s.Wakes)
	if len(s.Levels) > 1 || s.NestedRegions > 0 {
		b.WriteString("nesting:")
		for i, lm := range s.Levels {
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, " level %d: %d regions (max %d threads, wall %s)",
				lm.Level, lm.Regions, lm.MaxThreads, round(lm.TotalWall))
		}
		b.WriteString("\n")
	}
	if n := len(s.Regions); n > 0 {
		shown := s.Regions
		const maxRows = 16
		if n > maxRows {
			shown = s.Regions[:maxRows]
		}
		fmt.Fprintf(&b, "%-8s %-4s %-10s %-9s %-10s %-7s %-6s %-6s\n",
			"region", "lvl", "wall", "barwait%", "imbalance", "chunks", "tasks", "steals")
		for _, m := range shown {
			fmt.Fprintf(&b, "#%-7d %-4d %-10s %-9s %-10s %-7d %-6d %-6d\n",
				m.Gen, m.Level, round(m.Wall), fmt.Sprintf("%.1f%%", 100*m.WaitShare),
				round(m.Imbalance), m.Chunks, m.TasksRun, m.TasksStolen)
		}
		if n > maxRows {
			fmt.Fprintf(&b, "… %d more regions\n", n-maxRows)
		}
	}
	fmt.Fprintf(&b, "summary: regions=%d events=%d dropped=%d tasks_run=%d tasks_stolen=%d steal_rate=%.3f steal_batches=%d steals_local=%d steals_remote=%d barrier_wait_ns=%d wait_share=%.4f imbalance_avg_ns=%d chunks=%d parks=%d wakes=%d",
		len(s.Regions), s.Events, s.Dropped, s.TasksRun, s.TasksStolen, s.StealRate,
		s.StealBatches, s.StealsLocal, s.StealsRemote,
		int64(s.TotalBarrierWait), s.WaitShare, int64(s.AvgImbalance), s.Chunks, s.Parks, s.Wakes)
	fmt.Fprintf(&b, " levels=%d nested_regions=%d", len(s.Levels), s.NestedRegions)
	for _, lm := range s.Levels {
		fmt.Fprintf(&b, " level%d_regions=%d level%d_threads=%d",
			lm.Level, lm.Regions, lm.Level, lm.MaxThreads)
	}
	b.WriteString("\n")
	return b.String()
}

// perThread renders a per-thread count breakdown when it is interesting
// (more than one thread saw work).
func perThread(counts []int) string {
	active := 0
	minC, maxC, sum := 0, 0, 0
	for _, c := range counts {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	if sum == 0 || len(counts) < 2 {
		return ""
	}
	minC = counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > 0 {
			active++
		}
	}
	return fmt.Sprintf(" (per thread min %d / mean %.1f / max %d, %d/%d threads active)",
		minC, float64(sum)/float64(len(counts)), maxC, active, len(counts))
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
