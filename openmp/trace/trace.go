// Package trace is the runtime's OMPT-style introspection layer: an
// event-level record of what happened inside parallel regions — forks and
// joins, implicit tasks, barrier waits, worksharing chunk dispatch, explicit
// task creation/execution/stealing, worker parks and wakes — captured into
// per-thread lock-free ring buffers and exported as Chrome trace-event JSON
// (loadable in Perfetto) or reduced to per-region metrics.
//
// The design mirrors what LLVM/OpenMP exposes through its OMPT tools
// interface: the runtime is instrumented at its hot sites, but the entire
// mechanism sits behind a single atomically-loaded tracer pointer owned by
// the openmp.Runtime, so a runtime that is not tracing pays one predictable
// nil-check per site and allocates nothing. When tracing is enabled, Emit
// writes one fixed-size Event into the calling thread's preallocated ring —
// still allocation-free — and a full ring drops new events (counting them)
// rather than blocking or growing.
//
// Concurrency contract: each ring has exactly one producer (the owning team
// thread, via Emit) and the Tracer as a whole has exactly one consumer
// (Drain/Collect, typically openmp.Runtime.StopTrace). Producer and consumer
// may run concurrently — the rings are classic single-producer
// single-consumer queues whose head/tail words carry the happens-before
// edges — but two concurrent drainers are not allowed.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind enumerates the OMPT-style event kinds the runtime emits.
type Kind uint8

// Event kinds. Span kinds come in Begin/End (or Enter/Leave, Fork/Join)
// pairs on the same thread; the rest are instants.
const (
	// KindRegionFork marks the primary thread dispatching a parallel
	// region; Arg is the team size. Emitted before workers are released, so
	// it precedes every event of the region.
	KindRegionFork Kind = iota + 1
	// KindRegionJoin marks the primary thread returning from the region's
	// end barrier: the join of the fork–join pair.
	KindRegionJoin
	// KindImplicitBegin/End bracket one thread's implicit task — its
	// execution of the region body plus task drain and end barrier.
	KindImplicitBegin
	KindImplicitEnd
	// KindBarrierEnter/Leave bracket one thread's passage through a team
	// barrier (explicit or the implicit end-of-region barrier); the span is
	// the thread's barrier wait, parked or spinning.
	KindBarrierEnter
	KindBarrierLeave
	// KindChunk marks one worksharing chunk dispatched to the thread; Arg
	// is the chunk's iteration count.
	KindChunk
	// KindTaskCreate marks an explicit task being spawned.
	KindTaskCreate
	// KindTaskBegin/End bracket the execution of one explicit task.
	KindTaskBegin
	KindTaskEnd
	// KindTaskSteal marks one steal visit that claimed at least one task
	// from another thread's deque; Arg packs the victim thread id, the
	// batch size (how many tasks the visit transferred) and the victim's
	// NUMA-locality class — see StealArg.
	KindTaskSteal
	// KindPark/Wake mark a worker exhausting its blocktime budget between
	// regions and being woken for the next one; Region is the awaited
	// generation.
	KindPark
	KindWake

	kindMax
)

var kindNames = [kindMax]string{
	KindRegionFork:    "region fork",
	KindRegionJoin:    "region join",
	KindImplicitBegin: "implicit task begin",
	KindImplicitEnd:   "implicit task end",
	KindBarrierEnter:  "barrier enter",
	KindBarrierLeave:  "barrier leave",
	KindChunk:         "chunk",
	KindTaskCreate:    "task create",
	KindTaskBegin:     "task begin",
	KindTaskEnd:       "task end",
	KindTaskSteal:     "task steal",
	KindPark:          "park",
	KindWake:          "wake",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one timestamped trace record. Events are fixed-size (32 bytes)
// so a ring's storage is a single flat allocation.
type Event struct {
	// TS is nanoseconds since the tracer was created (monotonic clock).
	TS int64
	// Arg is the kind-specific payload (team size, chunk iterations,
	// steal victim); zero when the kind carries none.
	Arg int64
	// Region is the parallel-region id the event belongs to (the runtime's
	// global region counter, shared by every nesting level so inner regions
	// get ids distinct from their enclosing region), 0 for events before the
	// first region.
	Region uint64
	// Tid is the global thread id that emitted the event. Outer-team
	// threads keep their team-local ids; inner-team workers get fresh ids
	// past the outer team, so every goroutine owns exactly one ring.
	Tid int32
	// Kind is the event kind.
	Kind Kind
	// Level is the nesting depth of the region the event belongs to: 0 for
	// the outer team, 1 for its inner teams, and so on.
	Level uint8
}

// StealLocality classifies a steal victim's NUMA distance from the thief.
type StealLocality int64

const (
	// StealLocalityUnknown: the runtime had no placement or place-distance
	// model, so locality was not classified.
	StealLocalityUnknown StealLocality = 0
	// StealLocalityLocal: the victim's place is no farther than the thief's
	// own place's self-distance (same place or same NUMA node).
	StealLocalityLocal StealLocality = 1
	// StealLocalityRemote: the victim sits on a farther NUMA node.
	StealLocalityRemote StealLocality = 2
)

// String names the locality class.
func (l StealLocality) String() string {
	switch l {
	case StealLocalityLocal:
		return "local"
	case StealLocalityRemote:
		return "remote"
	}
	return "unknown"
}

// StealArg packs a KindTaskSteal payload into Event.Arg: the victim thread
// id in bits 0–15, the batch size in bits 16–31, and the locality class in
// bits 32–33. Decoded by Event.StealVictim, StealBatch and StealLocality.
func StealArg(victim, batch int, loc StealLocality) int64 {
	return int64(victim)&0xffff | (int64(batch)&0xffff)<<16 | int64(loc)<<32
}

// StealVictim returns the victim thread id of a KindTaskSteal event.
func (e Event) StealVictim() int { return int(e.Arg & 0xffff) }

// StealBatch returns how many tasks a KindTaskSteal event transferred.
// Events written before batch stealing carried only the victim id; their
// zero batch field decodes as 1 (one event was one stolen task).
func (e Event) StealBatch() int {
	b := int(e.Arg >> 16 & 0xffff)
	if b == 0 {
		b = 1
	}
	return b
}

// StealLocality returns the NUMA-locality class of a KindTaskSteal event.
func (e Event) StealLocality() StealLocality {
	l := StealLocality(e.Arg >> 32 & 0x3)
	if l > StealLocalityRemote {
		l = StealLocalityUnknown
	}
	return l
}

// cacheLine is the padding granularity separating independently written hot
// words, matching the openmp package's layout convention.
const cacheLine = 64

// ring is one thread's event buffer: a power-of-two single-producer
// single-consumer queue. The producer (the owning thread) writes buf[head]
// and publishes with a head store; the consumer reads buf[tail] and frees
// the slot with a tail store. A full ring drops the new event — tracing
// must never block or resize on the hot path — and counts the drop.
type ring struct {
	buf  []Event
	mask uint64
	_    [cacheLine - 32]byte
	// head is the next write position; written only by the producer.
	head atomic.Uint64
	_    [cacheLine - 8]byte
	// tail is the next read position; written only by the consumer.
	tail atomic.Uint64
	_    [cacheLine - 8]byte
	// dropped counts events discarded because the ring was full.
	dropped atomic.Uint64
	_       [cacheLine - 8]byte
}

func (r *ring) init(capacity int) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r.buf = make([]Event, n)
	r.mask = uint64(n - 1)
}

// emit appends one event, or counts a drop when the ring is full.
func (r *ring) emit(e Event) {
	head := r.head.Load()
	if head-r.tail.Load() >= uint64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[head&r.mask] = e
	r.head.Store(head + 1) // release: publishes the slot to the consumer
}

// drainAppend moves every published event into dst, oldest first.
func (r *ring) drainAppend(dst []Event) []Event {
	head := r.head.Load() // acquire: slots below head are fully written
	for tail := r.tail.Load(); tail != head; tail++ {
		dst = append(dst, r.buf[tail&r.mask])
		// The slot must be copied out before the producer may reuse it.
		r.tail.Store(tail + 1)
	}
	return dst
}

// DefaultBufferSize is the per-thread ring capacity (in events) used when a
// caller asks for 0.
const DefaultBufferSize = 1 << 16

// Tracer collects events from one runtime's team. Create one per tracing
// session (openmp.Runtime.StartTrace does); rings are preallocated at
// construction so Emit never allocates.
type Tracer struct {
	start time.Time
	rings []ring
}

// New returns a tracer with one ring per thread id in [0, threads) — pass
// the runtime's live global-thread-id count so inner-team workers get rings
// too — with eventsPerThread ring capacity per thread (rounded up to a
// power of two; 0 means DefaultBufferSize).
func New(threads, eventsPerThread int) *Tracer {
	if threads < 1 {
		threads = 1
	}
	if eventsPerThread <= 0 {
		eventsPerThread = DefaultBufferSize
	}
	t := &Tracer{start: time.Now(), rings: make([]ring, threads)}
	for i := range t.rings {
		t.rings[i].init(eventsPerThread)
	}
	return t
}

// Threads returns the number of per-thread rings.
func (t *Tracer) Threads() int { return len(t.rings) }

// Start returns the wall-clock anchor of timestamp zero.
func (t *Tracer) Start() time.Time { return t.start }

// Emit records one event on thread tid's ring, stamped with the nesting
// level of the emitting region. It is allocation-free and never blocks;
// events emitted while the ring is full are dropped and counted. Emit must
// only be called by tid's own goroutine (the single producer of its ring).
// Out-of-range tids are ignored — in particular, inner-team workers created
// after the tracer (their rings don't exist) silently trace nothing instead
// of corrupting a foreign ring.
func (t *Tracer) Emit(tid, level int, k Kind, region uint64, arg int64) {
	if tid < 0 || tid >= len(t.rings) {
		return
	}
	t.rings[tid].emit(Event{
		TS:     int64(time.Since(t.start)),
		Arg:    arg,
		Region: region,
		Tid:    int32(tid),
		Kind:   k,
		Level:  uint8(level),
	})
}

// DrainAppend moves every published event from all rings into dst (per-ring
// FIFO order, rings concatenated) and returns the extended slice. It is the
// single-consumer side of the rings: at most one goroutine may drain at a
// time, concurrently with producers.
func (t *Tracer) DrainAppend(dst []Event) []Event {
	for i := range t.rings {
		dst = t.rings[i].drainAppend(dst)
	}
	return dst
}

// Dropped returns the cumulative number of events discarded ring-full across
// all threads.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for i := range t.rings {
		n += t.rings[i].dropped.Load()
	}
	return n
}

// Data is a drained, time-ordered trace: what StopTrace hands back.
type Data struct {
	// Events in non-decreasing timestamp order; events with equal
	// timestamps keep their per-thread emission order.
	Events []Event
	// Threads is the team size the tracer covered.
	Threads int
	// Dropped counts events lost to full rings; when nonzero, span pairs
	// may be incomplete.
	Dropped uint64
	// Start anchors Event.TS zero on the wall clock.
	Start time.Time
}

// Collect drains all rings and returns the events merged into timestamp
// order. Like DrainAppend it is single-consumer.
func (t *Tracer) Collect() Data {
	evs := t.DrainAppend(nil)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return Data{Events: evs, Threads: len(t.rings), Dropped: t.Dropped(), Start: t.start}
}
