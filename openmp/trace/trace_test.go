package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingWrapAround fills a ring past capacity without draining: the ring
// must retain the oldest events FIFO, drop the rest, and count every drop.
func TestRingWrapAround(t *testing.T) {
	tr := New(1, 8) // rounded to 8
	capacity := len(tr.rings[0].buf)
	total := 3 * capacity
	for i := 0; i < total; i++ {
		tr.Emit(0, 0, KindChunk, 1, int64(i))
	}
	evs := tr.DrainAppend(nil)
	if len(evs) != capacity {
		t.Fatalf("drained %d events, want the ring capacity %d", len(evs), capacity)
	}
	for i, e := range evs {
		if e.Arg != int64(i) {
			t.Fatalf("event %d has arg %d, want %d (drop-newest must keep the oldest FIFO)", i, e.Arg, i)
		}
	}
	if got, want := tr.Dropped(), uint64(total-capacity); got != want {
		t.Errorf("Dropped() = %d, want %d", got, want)
	}
	// After a drain the ring accepts new events again.
	tr.Emit(0, 0, KindChunk, 2, 99)
	if evs := tr.DrainAppend(nil); len(evs) != 1 || evs[0].Arg != 99 {
		t.Errorf("post-drain emit: drained %v, want one event with arg 99", evs)
	}
}

// TestRingConcurrentFillDrain runs one producer per ring against a single
// concurrent drainer — the exact contract StopTrace relies on — under the
// race detector. Every emitted event must be either drained (in per-thread
// FIFO order) or counted as dropped.
func TestRingConcurrentFillDrain(t *testing.T) {
	const threads, perThread = 4, 5000
	tr := New(threads, 64) // small rings force wrap-around pressure
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				tr.Emit(tid, 0, KindChunk, uint64(tid), int64(i))
			}
		}(tid)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var got []Event
	for {
		got = tr.DrainAppend(got)
		select {
		case <-done:
			got = tr.DrainAppend(got) // final sweep after producers stop
			goto check
		default:
		}
	}
check:
	lastArg := make([]int64, threads)
	for i := range lastArg {
		lastArg[i] = -1
	}
	for _, e := range got {
		if e.Arg <= lastArg[e.Tid] {
			t.Fatalf("tid %d: arg %d arrived after %d; per-ring FIFO order violated", e.Tid, e.Arg, lastArg[e.Tid])
		}
		lastArg[e.Tid] = e.Arg
	}
	if total := uint64(len(got)) + tr.Dropped(); total != threads*perThread {
		t.Errorf("drained %d + dropped %d = %d events, want %d", len(got), tr.Dropped(), total, threads*perThread)
	}
	if len(got) == 0 {
		t.Error("the concurrent drainer received no events at all")
	}
}

// synthetic builds a two-thread, one-region trace with known timings:
// region 5 runs 100ns..1100ns, thread 1 arrives at the end barrier 300ns
// after thread 0, one task is created on tid 0, stolen and run by tid 1.
func synthetic() Data {
	mk := func(ts int64, tid int32, k Kind, arg int64) Event {
		return Event{TS: ts, Arg: arg, Region: 5, Tid: tid, Kind: k}
	}
	evs := []Event{
		mk(100, 0, KindRegionFork, 2),
		mk(110, 0, KindImplicitBegin, 0),
		mk(120, 1, KindImplicitBegin, 0),
		mk(130, 0, KindChunk, 50),
		mk(140, 1, KindChunk, 50),
		mk(150, 0, KindTaskCreate, 0),
		mk(200, 1, KindTaskSteal, 0),
		mk(210, 1, KindTaskBegin, 0),
		mk(400, 1, KindTaskEnd, 0),
		mk(500, 0, KindBarrierEnter, 0), // tid 0 arrives first
		mk(800, 1, KindBarrierEnter, 0), // tid 1 arrives 300ns later
		mk(900, 0, KindBarrierLeave, 0), // tid 0 waited 400ns
		mk(910, 1, KindBarrierLeave, 0), // tid 1 waited 110ns
		mk(950, 1, KindImplicitEnd, 0),
		mk(960, 0, KindImplicitEnd, 0),
		mk(1100, 0, KindRegionJoin, 0),
	}
	return Data{Events: evs, Threads: 2, Start: time.Unix(0, 0)}
}

func TestSummarizeDerivedMetrics(t *testing.T) {
	s := Summarize(synthetic())
	if len(s.Regions) != 1 {
		t.Fatalf("got %d regions, want 1", len(s.Regions))
	}
	m := s.Regions[0]
	if m.Gen != 5 || m.Threads != 2 {
		t.Errorf("region gen/threads = %d/%d, want 5/2", m.Gen, m.Threads)
	}
	if m.Wall != 1000 {
		t.Errorf("wall = %v, want 1000ns", m.Wall)
	}
	if m.BarrierWait != 510 { // 400 + 110
		t.Errorf("barrier wait = %v, want 510ns", m.BarrierWait)
	}
	if m.Imbalance != 300 {
		t.Errorf("imbalance = %v, want 300ns (800-500)", m.Imbalance)
	}
	wantShare := 510.0 / 2000.0
	if diff := m.WaitShare - wantShare; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("wait share = %v, want %v", m.WaitShare, wantShare)
	}
	if m.Chunks != 2 || m.ChunksPerThread[0] != 1 || m.ChunksPerThread[1] != 1 {
		t.Errorf("chunks = %d %v, want 2 [1 1]", m.Chunks, m.ChunksPerThread)
	}
	if m.TasksCreated != 1 || m.TasksRun != 1 || m.TasksStolen != 1 {
		t.Errorf("tasks c/r/s = %d/%d/%d, want 1/1/1", m.TasksCreated, m.TasksRun, m.TasksStolen)
	}
	if s.StealRate != 1.0 {
		t.Errorf("steal rate = %v, want 1.0", s.StealRate)
	}
	out := s.String()
	if !strings.Contains(out, "summary: regions=1") ||
		!strings.Contains(out, "tasks_stolen=1") ||
		!strings.Contains(out, "barrier_wait_ns=510") {
		t.Errorf("summary text missing machine line fields:\n%s", out)
	}
}

// TestSummarizeNestedLevels builds a depth-2 trace — an outer two-thread
// region (id 7) whose tid 0 forks a two-thread inner region (id 8, level 1)
// run by tid 0 and the inner worker tid 2 — and checks the per-level
// decode: region levels, the Levels breakdown, and the machine-line keys
// nested-smoke parses.
func TestSummarizeNestedLevels(t *testing.T) {
	mk := func(ts int64, tid int32, lvl uint8, region uint64, k Kind, arg int64) Event {
		return Event{TS: ts, Arg: arg, Region: region, Tid: tid, Kind: k, Level: lvl}
	}
	d := Data{Threads: 3, Start: time.Unix(0, 0), Events: []Event{
		mk(100, 0, 0, 7, KindRegionFork, 2),
		mk(110, 0, 0, 7, KindImplicitBegin, 0),
		mk(120, 1, 0, 7, KindImplicitBegin, 0),
		mk(200, 0, 1, 8, KindRegionFork, 2),
		mk(210, 0, 1, 8, KindImplicitBegin, 0),
		mk(220, 2, 1, 8, KindImplicitBegin, 0),
		mk(300, 0, 1, 8, KindBarrierEnter, 0),
		mk(310, 2, 1, 8, KindBarrierEnter, 0),
		mk(320, 0, 1, 8, KindBarrierLeave, 0),
		mk(320, 2, 1, 8, KindBarrierLeave, 0),
		mk(330, 2, 1, 8, KindImplicitEnd, 0),
		mk(340, 0, 1, 8, KindImplicitEnd, 0),
		mk(350, 0, 1, 8, KindRegionJoin, 0),
		mk(500, 0, 0, 7, KindBarrierEnter, 0),
		mk(510, 1, 0, 7, KindBarrierEnter, 0),
		mk(520, 0, 0, 7, KindBarrierLeave, 0),
		mk(520, 1, 0, 7, KindBarrierLeave, 0),
		mk(530, 0, 0, 7, KindImplicitEnd, 0),
		mk(530, 1, 0, 7, KindImplicitEnd, 0),
		mk(600, 0, 0, 7, KindRegionJoin, 0),
	}}
	s := Summarize(d)
	if len(s.Regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(s.Regions))
	}
	if s.Regions[0].Gen != 7 || s.Regions[0].Level != 0 {
		t.Errorf("region 0 gen/level = %d/%d, want 7/0", s.Regions[0].Gen, s.Regions[0].Level)
	}
	if s.Regions[1].Gen != 8 || s.Regions[1].Level != 1 {
		t.Errorf("region 1 gen/level = %d/%d, want 8/1", s.Regions[1].Gen, s.Regions[1].Level)
	}
	if s.NestedRegions != 1 {
		t.Errorf("NestedRegions = %d, want 1", s.NestedRegions)
	}
	want := []LevelMetrics{
		{Level: 0, Regions: 1, MaxThreads: 2, TotalWall: 500},
		{Level: 1, Regions: 1, MaxThreads: 2, TotalWall: 150},
	}
	if len(s.Levels) != 2 || s.Levels[0] != want[0] || s.Levels[1] != want[1] {
		t.Errorf("Levels = %+v, want %+v", s.Levels, want)
	}
	out := s.String()
	for _, key := range []string{
		"levels=2", "nested_regions=1",
		"level0_regions=1", "level0_threads=2",
		"level1_regions=1", "level1_threads=2",
	} {
		if !strings.Contains(out, key) {
			t.Errorf("summary text missing %q:\n%s", key, out)
		}
	}
	// The Chrome export must carry the level argument and still validate:
	// the inner span nests inside tid 0's outer span.
	var buf bytes.Buffer
	if err := WriteChrome(&buf, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !strings.Contains(buf.String(), `"level":1`) {
		t.Error("chrome JSON missing level arg")
	}
	if _, err := ValidateChrome(bytes.NewReader(buf.Bytes()), true); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
}

// TestChromeRoundTrip writes the synthetic trace as Chrome JSON and
// validates its shape strictly (no drops, so spans must balance).
func TestChromeRoundTrip(t *testing.T) {
	d := synthetic()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	n, err := ValidateChrome(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatalf("ValidateChrome: %v\n%s", err, buf.String())
	}
	if n != len(d.Events) {
		t.Errorf("validated %d events, want %d", n, len(d.Events))
	}
	for _, want := range []string{`"traceEvents"`, `"parallel region"`, `"barrier wait"`, `"task steal"`, `"thread_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("chrome JSON missing %s", want)
		}
	}
}

// Out-of-order timestamps and dangling spans must be rejected.
func TestValidateChromeRejects(t *testing.T) {
	bad := `{"traceEvents":[
		{"name":"a","ph":"B","ts":5,"pid":0,"tid":0},
		{"name":"b","ph":"i","s":"t","ts":2,"pid":0,"tid":0}]}`
	if _, err := ValidateChrome(strings.NewReader(bad), false); err == nil {
		t.Error("decreasing ts was not rejected")
	}
	dangling := `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]}`
	if _, err := ValidateChrome(strings.NewReader(dangling), true); err == nil {
		t.Error("unclosed span was not rejected in strict mode")
	}
	if _, err := ValidateChrome(strings.NewReader(dangling), false); err != nil {
		t.Errorf("lenient mode rejected a dangling span: %v", err)
	}
	if _, err := ValidateChrome(strings.NewReader(`{"traceEvents":[]}`), false); err == nil {
		t.Error("empty traceEvents was not rejected")
	}
}

// TestCollectSortsByTimestamp interleaves two rings with crossing
// timestamps; Collect must merge them into non-decreasing TS order.
func TestCollectSortsByTimestamp(t *testing.T) {
	tr := New(2, 16)
	tr.Emit(0, 0, KindChunk, 1, 0)
	time.Sleep(time.Millisecond)
	tr.Emit(1, 0, KindChunk, 1, 1)
	time.Sleep(time.Millisecond)
	tr.Emit(0, 0, KindChunk, 1, 2)
	d := tr.Collect()
	if len(d.Events) != 3 {
		t.Fatalf("collected %d events, want 3", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].TS < d.Events[i-1].TS {
			t.Fatalf("events not time-ordered: %v after %v", d.Events[i].TS, d.Events[i-1].TS)
		}
	}
	if d.Threads != 2 || d.Dropped != 0 {
		t.Errorf("Data threads/dropped = %d/%d, want 2/0", d.Threads, d.Dropped)
	}
}

// BenchmarkEmit measures the enabled-path cost of one event record.
func BenchmarkEmit(b *testing.B) {
	tr := New(1, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&(1<<19-1) == 0 {
			tr.rings[0].tail.Store(tr.rings[0].head.Load()) // keep the ring from filling
		}
		tr.Emit(0, 0, KindChunk, 1, int64(i))
	}
}
