package openmp

// Integration tests for the OMPT-style tracing layer: event emission from
// the instrumented runtime sites, allocation-freedom of the disabled hot
// path (including after a Start/Stop cycle), and the Stats exact-snapshot
// contract at Close.

import (
	"bytes"
	"testing"
	"time"

	"omptune/openmp/trace"
)

// TestTraceCapturesRegionEvents runs a traced region exercising every
// instrumented site — worksharing chunks, explicit tasks with forced
// steals, an explicit barrier — and checks the collected events and the
// derived summary.
func TestTraceCapturesRegionEvents(t *testing.T) {
	o := optsN(4)
	o.Schedule = ScheduleDynamic
	o.ChunkSize = 4
	rt := testRuntime(t, o)
	if err := rt.StartTrace(0); err != nil {
		t.Fatalf("StartTrace: %v", err)
	}
	if err := rt.StartTrace(0); err == nil {
		t.Error("second StartTrace did not error")
	}
	const tasks = 64
	rt.Parallel(func(th *Thread) {
		th.For(64, func(i int) {})
		// All tasks spawn on thread 0; any other thread that runs one must
		// have stolen it. The sleep keeps thread 0 from draining its own
		// deque before the others arrive, making steals all but certain.
		if th.ID() == 0 {
			for i := 0; i < tasks; i++ {
				th.Task(func(*Thread) { time.Sleep(50 * time.Microsecond) })
			}
		}
		th.Barrier()
	})
	d := rt.StopTrace()
	if rt.StopTrace().Events != nil {
		t.Error("second StopTrace returned events")
	}

	counts := map[trace.Kind]int{}
	for _, e := range d.Events {
		counts[e.Kind]++
	}
	if counts[trace.KindRegionFork] != 1 || counts[trace.KindRegionJoin] != 1 {
		t.Errorf("fork/join = %d/%d, want 1/1", counts[trace.KindRegionFork], counts[trace.KindRegionJoin])
	}
	if counts[trace.KindImplicitBegin] != 4 || counts[trace.KindImplicitEnd] != 4 {
		t.Errorf("implicit begin/end = %d/%d, want 4/4",
			counts[trace.KindImplicitBegin], counts[trace.KindImplicitEnd])
	}
	// 64 iters / chunk 4 = 16 chunks; each thread also passes the explicit
	// barrier, the loop's implicit barrier, and the end-of-region barrier.
	if counts[trace.KindChunk] != 16 {
		t.Errorf("chunks = %d, want 16", counts[trace.KindChunk])
	}
	if counts[trace.KindBarrierEnter] != 12 || counts[trace.KindBarrierLeave] != 12 {
		t.Errorf("barrier enter/leave = %d/%d, want 12/12",
			counts[trace.KindBarrierEnter], counts[trace.KindBarrierLeave])
	}
	if counts[trace.KindTaskCreate] != tasks || counts[trace.KindTaskBegin] != tasks || counts[trace.KindTaskEnd] != tasks {
		t.Errorf("task create/begin/end = %d/%d/%d, want %d each",
			counts[trace.KindTaskCreate], counts[trace.KindTaskBegin], counts[trace.KindTaskEnd], tasks)
	}
	if counts[trace.KindTaskSteal] == 0 {
		t.Error("no task steals traced (all tasks spawned on one thread)")
	}

	s := trace.Summarize(d)
	if len(s.Regions) != 1 {
		t.Fatalf("summary has %d regions, want 1", len(s.Regions))
	}
	m := s.Regions[0]
	if m.Threads != 4 || m.Wall <= 0 || m.BarrierWait <= 0 {
		t.Errorf("region threads/wall/barrierWait = %d/%v/%v, want 4/>0/>0",
			m.Threads, m.Wall, m.BarrierWait)
	}
	if m.TasksRun != tasks || m.Chunks != 16 {
		t.Errorf("region tasksRun/chunks = %d/%d, want %d/16", m.TasksRun, m.Chunks, tasks)
	}
	if s.StealRate <= 0 {
		t.Errorf("steal rate = %v, want > 0", s.StealRate)
	}

	// The trace must render as valid Chrome JSON; with no drops the spans
	// must balance strictly.
	if d.Dropped != 0 {
		t.Fatalf("trace dropped %d events with a default-size buffer", d.Dropped)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if n, err := trace.ValidateChrome(bytes.NewReader(buf.Bytes()), true); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	} else if n != len(d.Events) {
		t.Errorf("validated %d events, want %d", n, len(d.Events))
	}
}

// TestTraceSmallRingDropsCounted forces ring overflow and checks the trace
// still collects cleanly with the loss accounted for.
func TestTraceSmallRingDropsCounted(t *testing.T) {
	rt := testRuntime(t, optsN(2))
	if err := rt.StartTrace(8); err != nil {
		t.Fatalf("StartTrace: %v", err)
	}
	o := rt.Options()
	_ = o
	rt.Parallel(func(th *Thread) {
		th.For(4096, func(i int) {}) // static: few chunks
		for i := 0; i < 200; i++ {
			th.Barrier() // 2 events per thread per barrier: overflows 8-slot rings
		}
	})
	d := rt.StopTrace()
	if d.Dropped == 0 {
		t.Error("expected drops with an 8-event ring")
	}
	if len(d.Events) == 0 {
		t.Error("no events survived")
	}
}

// TestTraceDisabledZeroAlloc proves the acceptance criterion: with tracing
// disabled — both never-enabled and after a Start/Stop cycle — the
// steady-state hot-team dispatch stays allocation-free.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	o := optsN(4)
	o.Library = LibTurnaround
	rt := testRuntime(t, o)
	body := func(th *Thread) { th.For(64, func(i int) {}) }
	for i := 0; i < 10; i++ {
		rt.Parallel(body)
	}
	if allocs := testing.AllocsPerRun(100, func() { rt.Parallel(body) }); allocs != 0 {
		t.Errorf("never-traced Parallel: %.1f allocs/op, want 0", allocs)
	}

	// A past tracing session must leave no residue on the hot path.
	if err := rt.StartTrace(0); err != nil {
		t.Fatalf("StartTrace: %v", err)
	}
	rt.Parallel(body)
	if d := rt.StopTrace(); len(d.Events) == 0 {
		t.Error("traced region produced no events")
	}
	for i := 0; i < 10; i++ {
		rt.Parallel(body)
	}
	if allocs := testing.AllocsPerRun(100, func() { rt.Parallel(body) }); allocs != 0 {
		t.Errorf("post-StopTrace Parallel: %.1f allocs/op, want 0", allocs)
	}
}

// TestTraceEnabledZeroAlloc: emitting into preallocated rings is itself
// allocation-free, as long as the rings don't wrap (drops are free too, but
// large rings keep the event stream meaningful).
func TestTraceEnabledZeroAlloc(t *testing.T) {
	o := optsN(4)
	o.Library = LibTurnaround
	rt := testRuntime(t, o)
	body := func(th *Thread) { th.For(64, func(i int) {}) }
	if err := rt.StartTrace(1 << 12); err != nil {
		t.Fatalf("StartTrace: %v", err)
	}
	for i := 0; i < 10; i++ {
		rt.Parallel(body)
	}
	if allocs := testing.AllocsPerRun(100, func() { rt.Parallel(body) }); allocs != 0 {
		t.Errorf("traced Parallel: %.1f allocs/op, want 0", allocs)
	}
	rt.StopTrace()
}

// TestStatsExactAtQuiescence pins the Stats contract: region-scoped
// counters are exact once Parallel returns, and after Close every counter
// is final with Sleeps == Wakeups.
func TestStatsExactAtQuiescence(t *testing.T) {
	o := optsN(4)
	rt, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const regions, iters, tasks = 7, 64, 9
	before := rt.Stats()
	for r := 0; r < regions; r++ {
		rt.Parallel(func(th *Thread) {
			th.For(iters, func(i int) {})
			if th.ID() == 1 {
				for k := 0; k < tasks; k++ {
					th.Task(func(*Thread) {})
				}
			}
		})
	}
	got := rt.Stats().Sub(before)
	// Static schedule, 4 threads, 64 iters: every thread gets one chunk.
	if got.Regions != regions {
		t.Errorf("Regions = %d, want %d", got.Regions, regions)
	}
	if got.Chunks != regions*4 {
		t.Errorf("Chunks = %d, want %d", got.Chunks, regions*4)
	}
	if got.TasksRun != regions*tasks {
		t.Errorf("TasksRun = %d, want %d", got.TasksRun, regions*tasks)
	}

	rt.Close()
	final := rt.Stats()
	if final.Sleeps != final.Wakeups {
		t.Errorf("after Close: Sleeps %d != Wakeups %d", final.Sleeps, final.Wakeups)
	}
	if again := rt.Stats(); again != final {
		t.Errorf("Stats changed after Close: %+v then %+v", final, again)
	}
}
